package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"rafiki/internal/config"
	"rafiki/internal/obs"
)

// obsProbeCollector wraps the analytic collector with per-sample
// telemetry, exercising the ObsCollector stage path in Collect.
type obsProbeCollector struct {
	inner Collector
}

func (c obsProbeCollector) Sample(w Workload, cfg config.Config, seed int64) (float64, error) {
	return c.SampleObs(w, cfg, seed, nil)
}

func (c obsProbeCollector) SampleObs(w Workload, cfg config.Config, seed int64, reg *obs.Registry) (float64, error) {
	tput, err := c.inner.Sample(w, cfg, seed)
	reg.Counter("probe.samples").Inc()
	reg.Gauge("probe.last_seed").Set(float64(seed))
	reg.Record(obs.Span{Name: "probe.sample", Start: w.ReadRatio, End: w.ReadRatio + 1, Unit: "rr", Attrs: map[string]float64{"tput": tput}})
	return tput, err
}

// TestCollectDeterministicAcrossWorkers: same options must produce the
// same dataset (including the drop schedule) and a byte-identical obs
// snapshot whether samples run serially or on four workers. The only
// intentional difference — the par.collect.workers occupancy gauge — is
// excluded, since it reports the configured worker count by design.
func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	space := config.Cassandra()
	run := func(workers int) (Dataset, []byte) {
		reg := obs.NewRegistry()
		ds, err := Collect(obsProbeCollector{inner: analyticCollector(space)}, space, CollectOptions{
			Workloads: RRs(0, 0.3, 0.7, 1),
			Configs:   6,
			Seed:      11,
			DropRate:  0.15,
			Workers:   workers,
			Obs:       reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		delete(snap.Gauges, "par.collect.workers")
		blob, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return ds, blob
	}
	refDS, refSnap := run(1)
	if refDS.Dropped == 0 || len(refDS.Samples) == 0 {
		t.Fatalf("test wants both kept and dropped samples, got %d/%d", len(refDS.Samples), refDS.Dropped)
	}
	for _, workers := range []int{2, 4} {
		gotDS, gotSnap := run(workers)
		if !reflect.DeepEqual(refDS, gotDS) {
			t.Errorf("workers=%d: dataset differs from serial run", workers)
		}
		if !bytes.Equal(refSnap, gotSnap) {
			t.Errorf("workers=%d: obs snapshot differs from serial run:\n%s\nvs\n%s", workers, gotSnap, refSnap)
		}
	}
}

// TestCollectErrorDeterministicAcrossWorkers: when several samples
// fail, the reported error must be the one the serial loop would have
// hit first, for any worker count.
func TestCollectErrorDeterministicAcrossWorkers(t *testing.T) {
	space := config.Cassandra()
	boom := errors.New("generator crashed")
	failing := CollectorFunc(func(w Workload, cfg config.Config, seed int64) (float64, error) {
		if seed%3 == 0 {
			return 0, boom
		}
		return 1, nil
	})
	var refMsg string
	for _, workers := range []int{1, 2, 4} {
		_, err := Collect(failing, space, CollectOptions{
			Workloads: RRs(0, 0.5, 1),
			Configs:   5,
			Seed:      21,
			Workers:   workers,
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped %v", workers, err, boom)
		}
		if workers == 1 {
			refMsg = err.Error()
		} else if err.Error() != refMsg {
			t.Errorf("workers=%d: error %q, serial %q", workers, err.Error(), refMsg)
		}
	}
}
