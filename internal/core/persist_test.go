package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rafiki/internal/config"
)

func TestSurrogateSaveLoadRoundTrip(t *testing.T) {
	space := config.Cassandra()
	ds, err := Collect(analyticCollector(space), space, CollectOptions{
		Workloads: RRs(0, 0.5, 1),
		Configs:   8,
		Seed:      41,
	})
	if err != nil {
		t.Fatal(err)
	}
	sur, err := TrainSurrogate(ds, space, fastModelConfig())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "surrogate.json")
	if err := sur.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSurrogate(path, config.Cassandra())
	if err != nil {
		t.Fatal(err)
	}

	for _, rr := range []float64{0.1, 0.5, 0.9} {
		a, err := sur.Predict(RR(rr), config.Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Predict(RR(rr), config.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("prediction drifted: %v vs %v", a, b)
		}
	}

	// The reloaded surrogate must still drive the GA.
	rec, err := back.Optimize(RR(0.9), fastGAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := config.Cassandra().Validate(rec.Config); err != nil {
		t.Errorf("recommendation invalid: %v", err)
	}
}

func TestLoadSurrogateValidation(t *testing.T) {
	space := config.Cassandra()
	ds, err := Collect(analyticCollector(space), space, CollectOptions{
		Workloads: RRs(0, 1),
		Configs:   6,
		Seed:      43,
	})
	if err != nil {
		t.Fatal(err)
	}
	sur, err := TrainSurrogate(ds, space, fastModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "surrogate.json")
	if err := sur.Save(path); err != nil {
		t.Fatal(err)
	}

	// Wrong datastore.
	if _, err := LoadSurrogate(path, config.ScyllaDB()); err == nil {
		t.Error("loading a cassandra surrogate into scylladb should error")
	}
	// Mismatched key layout.
	mutated := config.Cassandra()
	mutated.KeyNames = mutated.KeyNames[:4]
	if _, err := LoadSurrogate(path, mutated); err == nil {
		t.Error("mismatched key count should error")
	}
	reordered := config.Cassandra()
	reordered.KeyNames[0], reordered.KeyNames[1] = reordered.KeyNames[1], reordered.KeyNames[0]
	if _, err := LoadSurrogate(path, reordered); err == nil {
		t.Error("reordered key names should error")
	}
	// Missing file.
	if _, err := LoadSurrogate(filepath.Join(t.TempDir(), "nope.json"), space); err == nil {
		t.Error("missing file should error")
	}
}

func TestTunerUseSurrogate(t *testing.T) {
	space := config.Cassandra()
	ds, err := Collect(analyticCollector(space), space, CollectOptions{
		Workloads: RRs(0, 1),
		Configs:   6,
		Seed:      45,
	})
	if err != nil {
		t.Fatal(err)
	}
	sur, err := TrainSurrogate(ds, space, fastModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(analyticCollector(space), config.Cassandra(), TunerOptions{
		SkipIdentify: true,
		GA:           fastGAOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.UseSurrogate(sur); err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.Recommend(RR(0.5)); err != nil {
		t.Errorf("Recommend after UseSurrogate: %v", err)
	}
	if err := tuner.UseSurrogate(nil); err == nil {
		t.Error("nil surrogate should error")
	}
	scyllaTuner, err := NewTuner(analyticCollector(space), config.ScyllaDB(), TunerOptions{SkipIdentify: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := scyllaTuner.UseSurrogate(sur); err == nil {
		t.Error("cross-datastore surrogate should error")
	}
}

func TestLoadSurrogateRejectsCorruptFiles(t *testing.T) {
	space := config.Cassandra()
	ds, err := Collect(analyticCollector(space), space, CollectOptions{
		Workloads: RRs(0, 1),
		Configs:   6,
		Seed:      47,
	})
	if err != nil {
		t.Fatal(err)
	}
	sur, err := TrainSurrogate(ds, space, fastModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "surrogate.json")
	if err := sur.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated file: a partial write or interrupted download.
	trunc := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(trunc, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSurrogate(trunc, config.Cassandra()); err == nil {
		t.Error("truncated surrogate file should be rejected")
	}

	// NaN-poisoned weights: replace the first serialized weight value
	// with a NaN token.
	text := string(blob)
	idx := strings.Index(text, `"weights"`)
	if idx < 0 {
		t.Fatal("no weights array in saved surrogate")
	}
	start := idx + strings.Index(text[idx:], "[") + 1
	end := start + strings.IndexAny(text[start:], ",]")
	poisoned := filepath.Join(dir, "poisoned.json")
	if err := os.WriteFile(poisoned, []byte(text[:start]+"NaN"+text[end:]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSurrogate(poisoned, config.Cassandra()); err == nil {
		t.Error("NaN-poisoned surrogate file should be rejected")
	}

	// Feature-width mismatch with a matching key-name list: a surrogate
	// trained on a narrower space whose file claims the full key set.
	narrow := config.Cassandra()
	narrow.KeyNames = narrow.KeyNames[:4]
	dsN, err := Collect(analyticCollector(narrow), narrow, CollectOptions{
		Workloads: RRs(0, 1),
		Configs:   6,
		Seed:      48,
	})
	if err != nil {
		t.Fatal(err)
	}
	surN, err := TrainSurrogate(dsN, narrow, fastModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	narrowPath := filepath.Join(dir, "narrow.json")
	if err := surN.Save(narrowPath); err != nil {
		t.Fatal(err)
	}
	var sf map[string]json.RawMessage
	narrowBlob, err := os.ReadFile(narrowPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(narrowBlob, &sf); err != nil {
		t.Fatal(err)
	}
	full, err := json.Marshal(config.Cassandra().KeyNames)
	if err != nil {
		t.Fatal(err)
	}
	sf["keyNames"] = full
	forged, err := json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	forgedPath := filepath.Join(dir, "forged.json")
	if err := os.WriteFile(forgedPath, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSurrogate(forgedPath, config.Cassandra()); err == nil {
		t.Error("feature-width mismatch should be rejected despite matching key names")
	}
}
