package core

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
)

// Surrogate is the trained performance model fnet(RR, C) of Equation
// (2), plus the configuration-space metadata needed to encode and
// decode feature vectors.
type Surrogate struct {
	// Model is the underlying pruned DNN ensemble.
	Model *nn.Model
	// Space supplies the key-parameter encoding.
	Space *config.Space
}

// TrainSurrogate fits the DNN ensemble to a dataset.
func TrainSurrogate(ds Dataset, space *config.Space, cfg nn.ModelConfig) (*Surrogate, error) {
	xs, ys, err := ds.Features(space)
	if err != nil {
		return nil, err
	}
	model, err := nn.Fit(xs, ys, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: training surrogate: %w", err)
	}
	return &Surrogate{Model: model, Space: space}, nil
}

// Predict returns the surrogate's throughput estimate for a workload
// and configuration. One call costs microseconds, which is what makes
// GA search over the surrogate ~4 orders of magnitude faster than
// benchmarking real configurations (Section 4.8).
func (s *Surrogate) Predict(w Workload, cfg config.Config) (float64, error) {
	vec, err := s.Space.FeatureVector(w.Vector(), cfg)
	if err != nil {
		return 0, err
	}
	return s.Model.Predict(vec)
}

// OptimizeResult is the outcome of a configuration search.
type OptimizeResult struct {
	// Config is the recommended (feasible) configuration.
	Config config.Config
	// Predicted is the surrogate's throughput estimate for Config.
	Predicted float64
	// Evaluations counts surrogate calls spent searching.
	Evaluations int
	// History is the best surrogate value per GA generation.
	History []float64
}

// Optimize searches the key-parameter space for the configuration that
// maximizes predicted throughput at the given workload (Equation 4),
// using the genetic algorithm of Section 3.7.2.
func (s *Surrogate) Optimize(w Workload, opts ga.Options) (OptimizeResult, error) {
	keys, err := s.Space.KeyParams()
	if err != nil {
		return OptimizeResult{}, err
	}
	bounds := make([]ga.Bound, len(keys))
	for i, p := range keys {
		bounds[i] = ga.Bound{
			Min:     p.Min,
			Max:     p.Max,
			Integer: p.Kind != config.Continuous,
		}
	}
	// The GA prefers BatchFitness: one ensemble batch call per brood,
	// with the feature-vector scratch reused across generations. The
	// scalar Fitness stays as the single-candidate fallback.
	prefix := w.Vector()
	var vecs [][]float64
	problem := ga.Problem{
		Bounds: bounds,
		Fitness: func(genes []float64) (float64, error) {
			vec := make([]float64, 0, len(genes)+len(prefix))
			vec = append(vec, prefix...)
			vec = append(vec, genes...)
			return s.Model.Predict(vec)
		},
		BatchFitness: func(genes [][]float64, out []float64) error {
			for len(vecs) < len(genes) {
				vecs = append(vecs, nil)
			}
			for i, g := range genes {
				v := append(vecs[i][:0], prefix...)
				vecs[i] = append(v, g...)
			}
			return s.Model.PredictBatchInto(out, vecs[:len(genes)])
		},
	}
	res, err := ga.Run(problem, opts)
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("core: GA search: %w", err)
	}
	cfg, err := s.Space.ConfigFromVector(res.Best)
	if err != nil {
		return OptimizeResult{}, err
	}
	return OptimizeResult{
		Config:      cfg,
		Predicted:   res.BestFitness,
		Evaluations: res.Evaluations,
		History:     res.History,
	}, nil
}
