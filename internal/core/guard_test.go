package core

import (
	"errors"
	"testing"

	"rafiki/internal/config"
	"rafiki/internal/forecast"
)

func TestGuardedControllerValidation(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	if _, err := NewGuardedController(nil, app, DefaultGuardOptions()); err == nil {
		t.Error("nil tuner should error")
	}
	if _, err := NewGuardedController(tuner, nil, DefaultGuardOptions()); err == nil {
		t.Error("nil applier should error")
	}
	bad := []GuardOptions{
		{Threshold: -0.1},
		{Threshold: 1.5},
		{MaxStdFrac: -1},
		{MaxGainFactor: -1},
		{ProbeTolerance: 2},
		{CanaryWindows: -1},
		{RegressionTolerance: 1},
	}
	for i, opts := range bad {
		if _, err := NewGuardedController(tuner, app, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	ctrl, err := NewGuardedController(tuner, app, DefaultGuardOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(1.5, 0); err == nil {
		t.Error("bad read ratio should error")
	}
}

func TestGuardedControllerAppliesAndCommits(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 0 // the fast test ensemble disagrees a lot; vet elsewhere
	opts.CanaryWindows = 2
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ctrl.Observe(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || len(app.applied) != 1 {
		t.Fatalf("first observation should apply: changed=%v applied=%d", changed, len(app.applied))
	}
	if ctrl.LastGood() != nil {
		t.Error("config should still be on probation")
	}
	// Feed two healthy windows: measured matches the surrogate's view.
	for i := 0; i < 2; i++ {
		predicted, err := tuner.Surrogate().Predict(RR(0.9), ctrl.Current())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctrl.Observe(0.9, predicted); err != nil {
			t.Fatal(err)
		}
	}
	if ctrl.LastGood() == nil {
		t.Error("healthy canary should commit")
	}
	st := ctrl.Stats()
	if st.Retunes != 1 || st.Commits != 1 || st.Rollbacks != 0 {
		t.Errorf("stats = %+v, want 1 retune, 1 commit", st)
	}
}

func TestGuardedControllerRollsBackOnRegression(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 0
	opts.RegressionTolerance = 0.3
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(0.9, 0); err != nil {
		t.Fatal(err)
	}
	// The canary window measures a collapse far below the prediction.
	changed, err := ctrl.Observe(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("regression should change the live config")
	}
	st := ctrl.Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", st.Rollbacks)
	}
	// Nothing was ever committed, so the rollback target is the space
	// default configuration.
	def := tuner.Space().Default()
	got := app.applied[len(app.applied)-1]
	for name, v := range def {
		if got[name] != v {
			t.Fatalf("rollback applied %v for %s, want default %v", got[name], name, v)
		}
	}
	if st.Commits != 0 {
		t.Errorf("commits = %d, want 0", st.Commits)
	}
}

func TestGuardRejectsDisagreementAndOutOfBand(t *testing.T) {
	tuner := preparedTuner(t)

	// An impossibly strict disagreement bound vetoes every candidate:
	// a finite ensemble always has some spread.
	app := &recordingApplier{}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 1e-12
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ctrl.Observe(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if changed || len(app.applied) != 0 {
		t.Error("disagreeing prediction should be vetoed before apply")
	}
	if ctrl.Stats().RejectedPredictions != 1 {
		t.Errorf("rejected = %d, want 1", ctrl.Stats().RejectedPredictions)
	}
	// The veto pins the tuning point: the same window does not re-vet.
	if _, err := ctrl.Observe(0.9, 0); err != nil {
		t.Fatal(err)
	}
	if ctrl.Stats().RejectedPredictions != 1 {
		t.Error("unchanged workload should not re-vet")
	}

	// A measured baseline of ~1 op/s makes any real prediction
	// out-of-band under MaxGainFactor.
	app = &recordingApplier{}
	opts = DefaultGuardOptions()
	opts.MaxStdFrac = 0
	opts.MaxGainFactor = 2
	ctrl, err = NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	changed, err = ctrl.Observe(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if changed || ctrl.Stats().RejectedPredictions != 1 {
		t.Errorf("out-of-band prediction should be vetoed: changed=%v stats=%+v", changed, ctrl.Stats())
	}
}

func TestGuardProbeVetoesCandidate(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 0
	probes := 0
	opts.Probe = func(w Workload, cfg config.Config) (float64, error) {
		probes++
		return 1, nil // the measured probe collapses
	}
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ctrl.Observe(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if changed || len(app.applied) != 0 {
		t.Error("failed probe should keep the candidate off the datastore")
	}
	if probes != 1 || ctrl.Stats().ProbeRejections != 1 {
		t.Errorf("probes = %d, rejections = %d", probes, ctrl.Stats().ProbeRejections)
	}

	// A probe error propagates.
	opts.Probe = func(Workload, config.Config) (float64, error) {
		return 0, errors.New("probe rig unavailable")
	}
	ctrl, err = NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(0.2, 0); err == nil {
		t.Error("probe error should propagate")
	}
}

func TestGuardedControllerProactiveForecasting(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	fc, err := forecast.NewEWMA(1) // alpha 1: forecast = last observation
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 0
	opts.CanaryWindows = 0
	opts.Forecaster = fc
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(0.9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(0.1, 0); err != nil {
		t.Fatal(err)
	}
	if ctrl.Retunes() != 2 {
		t.Fatalf("retunes = %d, want 2", ctrl.Retunes())
	}
	// Tuned for the forecast regimes: read-heavy then write-heavy.
	if app.applied[0][config.ParamCompactionStrategy] == app.applied[1][config.ParamCompactionStrategy] {
		t.Error("forecast regimes should pick different compaction strategies")
	}
}

func TestSLOObjectiveRollsBackDespiteThroughputPass(t *testing.T) {
	// The canary meets its mean-throughput prediction in every window
	// but blows the p99 ceiling: the SLO objective must win and roll
	// the configuration back anyway.
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 0
	opts.CanaryWindows = 2
	opts.SLOP99Max = 0.050 // 50 virtual-ms
	opts.SLOMinCompliance = 1
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(0.9, 0); err != nil {
		t.Fatal(err)
	}
	if len(app.applied) != 1 {
		t.Fatalf("first observation should apply, got %d applies", len(app.applied))
	}
	predicted, err := tuner.Surrogate().Predict(RR(0.9), ctrl.Current())
	if err != nil {
		t.Fatal(err)
	}
	// Throughput exactly on prediction — the regression check passes —
	// with a p99 double the ceiling.
	changed, err := ctrl.ObserveWindow(WindowMetrics{ReadRatio: 0.9, Throughput: predicted, P99: 0.100})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("SLO violation during probation should roll back")
	}
	st := ctrl.Stats()
	if st.SLOViolations != 1 || st.SLORollbacks != 1 || st.Rollbacks != 1 {
		t.Fatalf("stats = %+v, want 1 SLO violation, 1 SLO rollback", st)
	}
	if st.Commits != 0 {
		t.Errorf("commits = %d, want 0", st.Commits)
	}
	// The rollback target is the space default: nothing ever committed.
	def := tuner.Space().Default()
	got := app.applied[len(app.applied)-1]
	for name, v := range def {
		if got[name] != v {
			t.Fatalf("rollback applied %v for %s, want default %v", got[name], name, v)
		}
	}
}

func TestSLOCompliantCanaryCommits(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	opts := DefaultGuardOptions()
	opts.MaxStdFrac = 0
	opts.CanaryWindows = 2
	opts.SLOP99Max = 0.050
	opts.SLOMinCompliance = 0.5 // one of two windows may violate
	ctrl, err := NewGuardedController(tuner, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Observe(0.9, 0); err != nil {
		t.Fatal(err)
	}
	predicted, err := tuner.Surrogate().Predict(RR(0.9), ctrl.Current())
	if err != nil {
		t.Fatal(err)
	}
	// One violating window is within the 0.5 compliance bar, the second
	// window meets the ceiling, and the canary commits.
	for _, p99 := range []float64{0.100, 0.010} {
		if _, err := ctrl.ObserveWindow(WindowMetrics{ReadRatio: 0.9, Throughput: predicted, P99: p99}); err != nil {
			t.Fatal(err)
		}
	}
	st := ctrl.Stats()
	if st.SLOViolations != 1 {
		t.Errorf("SLO violations = %d, want 1", st.SLOViolations)
	}
	if st.SLORollbacks != 0 || st.Rollbacks != 0 {
		t.Errorf("stats = %+v, want no rollbacks", st)
	}
	if ctrl.LastGood() == nil || st.Commits != 1 {
		t.Errorf("compliant canary should commit: %+v", st)
	}
}

func TestSLOOptionValidation(t *testing.T) {
	tuner := preparedTuner(t)
	app := &recordingApplier{}
	bad := []GuardOptions{
		{SLOP99Max: -1},
		{SLOP99Max: 0.05},                       // ceiling without a compliance bar
		{SLOP99Max: 0.05, SLOMinCompliance: 2},  // compliance out of range
		{SLOP99Max: 0.05, SLOMinCompliance: -1}, // compliance out of range
	}
	for i, opts := range bad {
		if _, err := NewGuardedController(tuner, app, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// TestControllerSetShape: fixing the scan/skew axes changes the
// workload the controllers tune for, so a shape change alone must push
// the L1 re-tune distance past the threshold; invalid axes are
// rejected on both controller flavors.
func TestControllerSetShape(t *testing.T) {
	tuner := preparedTuner(t)
	ctrl, err := NewController(tuner, &recordingApplier{}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SetShape(1.2, 0); err == nil {
		t.Error("scan ratio > 1 should be rejected")
	}
	if err := ctrl.SetShape(0, -0.5); err == nil {
		t.Error("negative skew should be rejected")
	}
	if retuned, err := ctrl.Observe(0.8); err != nil || !retuned {
		t.Fatalf("first observation should tune: %v %v", retuned, err)
	}
	if retuned, err := ctrl.Observe(0.8); err != nil || retuned {
		t.Fatalf("steady workload should not retune: %v %v", retuned, err)
	}
	if err := ctrl.SetShape(0.4, 0.3); err != nil {
		t.Fatal(err)
	}
	// Same read ratio, but the shape axes moved 0.7 in L1 — past the
	// 0.2 threshold, so the next window must retune.
	if retuned, err := ctrl.Observe(0.8); err != nil || !retuned {
		t.Errorf("shape change should force a retune: %v %v", retuned, err)
	}

	guarded, err := NewGuardedController(tuner, &recordingApplier{}, DefaultGuardOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := guarded.SetShape(-0.1, 0); err == nil {
		t.Error("guarded controller should reject a negative scan ratio")
	}
	if err := guarded.SetShape(0.3, 0.9); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
}
