package core

import (
	"fmt"

	"rafiki/internal/anova"
	"rafiki/internal/config"
)

// IdentifyOptions tunes the important-parameter-identification stage.
type IdentifyOptions struct {
	// ReadRatio is the workload under which parameters are swept.
	ReadRatio float64
	// ScanRatio and Skew extend the sweep workload with the op-mix
	// shape axes, so ANOVA ranks parameters under the workload the
	// datastore will actually see (a scan-heavy sweep surfaces
	// compaction-strategy variance a point-op sweep hides).
	ScanRatio float64
	Skew      float64
	// MinK and MaxK bound the elbow search for the key-parameter count
	// (the paper lands on 5 for Cassandra).
	MinK, MaxK int
	// Repeats is how many benchmark repetitions back each sweep value
	// (1 in the paper's protocol; more enables a proper F test).
	Repeats int
	// Seed derives per-sample seeds.
	Seed int64
}

// DefaultIdentifyOptions mirrors the paper's protocol.
func DefaultIdentifyOptions() IdentifyOptions {
	return IdentifyOptions{ReadRatio: 0.5, MinK: 3, MaxK: 8, Repeats: 1}
}

// Workload returns the sweep workload the options describe.
func (o IdentifyOptions) Workload() Workload {
	return Workload{ReadRatio: o.ReadRatio, ScanRatio: o.ScanRatio, Skew: o.Skew}
}

// Identification is the outcome of the ANOVA stage.
type Identification struct {
	// Ranking holds the full ANOVA table for every parameter, sorted by
	// descending response standard deviation — Figure 5's content.
	Ranking anova.Ranking
	// KeyNames is the selected key-parameter set.
	KeyNames []string
}

// IdentifyKeyParameters runs the paper's one-parameter-at-a-time ANOVA
// protocol (Section 3.4): each parameter is varied over its sweep
// values while the others stay at defaults, parameters are ranked by
// how strongly the response moves, and the elbow rule picks k.
// Parameters the engine's auto-tuner ignores are skipped, matching the
// ScyllaDB adjustment of Section 4.10.
func IdentifyKeyParameters(c Collector, space *config.Space, opts IdentifyOptions) (Identification, error) {
	if opts.Repeats < 1 {
		opts.Repeats = 1
	}
	if err := opts.Workload().Validate(); err != nil {
		return Identification{}, fmt.Errorf("core: identify workload: %w", err)
	}
	sweeps := make(map[string][][]float64)
	seed := opts.Seed
	for _, p := range space.Params() {
		if space.Ignored(p.Name) {
			continue
		}
		if len(p.Sweep) < 2 {
			continue
		}
		groups := make([][]float64, 0, len(p.Sweep))
		for _, v := range p.Sweep {
			group := make([]float64, 0, opts.Repeats)
			for r := 0; r < opts.Repeats; r++ {
				seed++
				tput, err := c.Sample(opts.Workload(), config.Config{p.Name: v}, seed)
				if err != nil {
					return Identification{}, fmt.Errorf("core: sweeping %s=%v: %w", p.Name, v, err)
				}
				group = append(group, tput)
			}
			groups = append(groups, group)
		}
		sweeps[p.Name] = groups
	}
	ranking, err := anova.Rank(sweeps)
	if err != nil {
		return Identification{}, err
	}
	// The elbow runs on the group-deduplicated ranking: parameters that
	// control the same mechanism count once (Section 4.5 consolidates
	// the memtable-flush parameters before settling on k=5).
	deduped := dedupeRanking(space, ranking)
	k := deduped.Elbow(opts.MinK, opts.MaxK)
	return Identification{
		Ranking:  ranking,
		KeyNames: selectKeyNames(space, ranking, k),
	}, nil
}

// dedupeRanking collapses each mechanism group to its first (highest
// variance) entry.
func dedupeRanking(space *config.Space, ranking anova.Ranking) anova.Ranking {
	var out anova.Ranking
	groupSeen := make(map[string]bool)
	for _, e := range ranking.Entries {
		p, ok := space.Param(e.Factor)
		if ok && p.Group != "" {
			if groupSeen[p.Group] {
				continue
			}
			groupSeen[p.Group] = true
		}
		out.Entries = append(out.Entries, e)
	}
	return out
}

// selectKeyNames walks the ranking and picks k key parameters, keeping
// one representative per mechanism group. This mirrors Section 4.5:
// several memtable parameters jointly control flushing, so Rafiki
// includes only memtable_cleanup_threshold and moves on to the next
// distinct parameter.
func selectKeyNames(space *config.Space, ranking anova.Ranking, k int) []string {
	var out []string
	groupSeen := make(map[string]bool)
	chosen := make(map[string]bool)
	for _, e := range ranking.Entries {
		if len(out) >= k {
			break
		}
		name := e.Factor
		p, ok := space.Param(name)
		if !ok || chosen[name] {
			continue
		}
		if p.Group != "" {
			if groupSeen[p.Group] {
				continue
			}
			groupSeen[p.Group] = true
			if rep := space.GroupRepresentative(p.Group); rep != "" {
				if _, ok := space.Param(rep); ok && !chosen[rep] {
					out = append(out, rep)
					chosen[rep] = true
					continue
				}
			}
		}
		out = append(out, name)
		chosen[name] = true
	}
	return out
}
