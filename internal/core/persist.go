package core

import (
	"encoding/json"
	"fmt"
	"os"

	"rafiki/internal/config"
	"rafiki/internal/nn"
)

// surrogateFile is the on-disk format of a trained surrogate. The
// offline pipeline costs hours of benchmarking; persisting its output
// lets the online stage start instantly on the next run.
type surrogateFile struct {
	Datastore string          `json:"datastore"`
	KeyNames  []string        `json:"keyNames"`
	Model     json.RawMessage `json:"model"`
}

// Save writes the surrogate to path as JSON.
func (s *Surrogate) Save(path string) error {
	modelBlob, err := json.Marshal(s.Model)
	if err != nil {
		return fmt.Errorf("core: encoding surrogate model: %w", err)
	}
	blob, err := json.MarshalIndent(surrogateFile{
		Datastore: s.Space.Name,
		KeyNames:  s.Space.KeyNames,
		Model:     modelBlob,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding surrogate: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("core: writing surrogate: %w", err)
	}
	return nil
}

// LoadSurrogate reads a surrogate saved by Save and binds it to space,
// validating that the datastore and key-parameter layout match — a
// surrogate trained for one feature encoding must not silently predict
// for another.
func LoadSurrogate(path string, space *config.Space) (*Surrogate, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading surrogate: %w", err)
	}
	var sf surrogateFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		return nil, fmt.Errorf("core: decoding surrogate: %w", err)
	}
	if sf.Datastore != space.Name {
		return nil, fmt.Errorf("core: surrogate was trained for %q, not %q", sf.Datastore, space.Name)
	}
	if len(sf.KeyNames) != len(space.KeyNames) {
		return nil, fmt.Errorf("core: surrogate has %d key parameters, space has %d", len(sf.KeyNames), len(space.KeyNames))
	}
	for i, n := range sf.KeyNames {
		if n != space.KeyNames[i] {
			return nil, fmt.Errorf("core: key parameter %d is %q in the surrogate but %q in the space", i, n, space.KeyNames[i])
		}
	}
	var model nn.Model
	if err := json.Unmarshal(sf.Model, &model); err != nil {
		return nil, fmt.Errorf("core: decoding surrogate model: %w", err)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: surrogate model failed validation: %w", err)
	}
	// The key-name list and the model's trained feature width must agree
	// with the space: the workload characterization (read ratio, scan
	// ratio, skew) plus one feature per key parameter. A stale or
	// hand-edited file that passes the name check but was trained at a
	// different width would otherwise predict garbage — including
	// RR-only surrogates saved before the op-mix axes existed.
	if want := WorkloadDims + len(space.KeyNames); model.InputWidth() != want {
		return nil, fmt.Errorf("core: surrogate expects %d features, space needs %d (%d workload features + %d key parameters)",
			model.InputWidth(), want, WorkloadDims, len(space.KeyNames))
	}
	return &Surrogate{Model: &model, Space: space}, nil
}
