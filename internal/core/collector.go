package core

import (
	"fmt"
	"math"
	"math/rand"

	"rafiki/internal/config"
	"rafiki/internal/obs"
	"rafiki/internal/par"
)

// CollectOptions tunes the training-data collection stage.
type CollectOptions struct {
	// Workloads lists the workload characterizations to benchmark; the
	// paper uses 11 read ratios spanning 0%..100% in 10% steps, and
	// mixed-op suites add scan-ratio/skew points (see Workload).
	Workloads []Workload
	// Configs is the number of configurations (20 in the paper, for
	// 220 total samples).
	Configs int
	// Seed drives config sampling and per-sample seeds.
	Seed int64
	// DropRate simulates faulted samples removed from the dataset (the
	// paper drops 20 of 220 for client faults); 0 keeps everything.
	DropRate float64
	// Workers bounds how many samples run concurrently; <= 0 means one
	// per CPU. Sample seeds and the drop schedule are fixed before any
	// sample runs, and results land in index-addressed slots, so every
	// worker count yields the same dataset.
	Workers int
	// Obs, when non-nil, receives the collection stage's worker gauge
	// and task counter, plus each sample's telemetry (via ObsCollector
	// stages merged in sample order).
	Obs *obs.Registry
}

// DefaultCollectOptions mirrors the paper's data-collection setup.
func DefaultCollectOptions() CollectOptions {
	ws := make([]Workload, 0, 11)
	for rr := 0.0; rr <= 1.0001; rr += 0.1 {
		ws = append(ws, RR(math.Round(rr*10)/10))
	}
	return CollectOptions{Workloads: ws, Configs: 20}
}

// SampleConfigs draws the configuration set C for data collection
// following Section 3.5: the default configuration is included, every
// key parameter's minimum and maximum each occur at least once, and the
// remaining configurations are random — but not fully combinatorial.
func SampleConfigs(space *config.Space, n int, seed int64) ([]config.Config, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need at least one configuration, got %d", n)
	}
	keys, err := space.KeyParams()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	randomValue := func(p config.Parameter) float64 {
		v := p.Min + rng.Float64()*(p.Max-p.Min)
		return p.Clamp(v)
	}
	randomConfig := func() config.Config {
		cfg := make(config.Config, len(keys))
		for _, p := range keys {
			cfg[p.Name] = randomValue(p)
		}
		return cfg
	}

	out := make([]config.Config, 0, n)
	out = append(out, config.Config{}) // the default configuration

	// Coverage: one config pinning each key parameter at min, one at
	// max, with the other parameters random.
	for _, p := range keys {
		for _, v := range []float64{p.Min, p.Max} {
			if len(out) >= n {
				break
			}
			cfg := randomConfig()
			cfg[p.Name] = p.Clamp(v)
			out = append(out, cfg)
		}
	}
	for len(out) < n {
		out = append(out, randomConfig())
	}
	return out[:n], nil
}

// Collect benchmarks every workload against every sampled
// configuration, producing the surrogate's training dataset.
func Collect(c Collector, space *config.Space, opts CollectOptions) (Dataset, error) {
	if len(opts.Workloads) == 0 {
		return Dataset{}, fmt.Errorf("core: no workloads to collect")
	}
	for _, w := range opts.Workloads {
		if err := w.Validate(); err != nil {
			return Dataset{}, err
		}
	}
	if opts.DropRate < 0 || opts.DropRate >= 1 {
		return Dataset{}, fmt.Errorf("core: drop rate %v out of [0,1)", opts.DropRate)
	}
	configs, err := SampleConfigs(space, opts.Configs, opts.Seed)
	if err != nil {
		return Dataset{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	// Per-sample seeds and the drop schedule are decided sequentially up
	// front — the rng consumption order is fixed before any benchmarking
	// starts — so the surviving task list is identical for every worker
	// count. The samples themselves then fan out.
	type task struct {
		cfg  config.Config
		w    Workload
		seed int64
	}
	var ds Dataset
	var tasks []task
	seed := opts.Seed + 1000
	for _, cfg := range configs {
		for _, w := range opts.Workloads {
			seed++
			if opts.DropRate > 0 && rng.Float64() < opts.DropRate {
				// A faulted load generator: the sample is discarded, as
				// in the paper's cleanup of 20 noisy samples.
				ds.Dropped++
				continue
			}
			tasks = append(tasks, task{cfg: cfg, w: w, seed: seed})
		}
	}

	oc, hasObs := c.(ObsCollector)
	tputs := make([]float64, len(tasks))
	stages := make([]*obs.Registry, len(tasks))
	err = par.Do(len(tasks), par.Options{Workers: opts.Workers, Name: "collect", Obs: opts.Obs}, func(i int) error {
		t := tasks[i]
		var tput float64
		var err error
		if hasObs {
			stage := opts.Obs.Stage()
			stages[i] = stage
			tput, err = oc.SampleObs(t.w, t.cfg, t.seed, stage)
		} else {
			tput, err = c.Sample(t.w, t.cfg, t.seed)
		}
		if err != nil {
			return fmt.Errorf("core: sampling %s at %v: %w", space.Describe(t.cfg), t.w, err)
		}
		tputs[i] = tput
		return nil
	})
	if err != nil {
		return Dataset{}, err
	}
	ds.Samples = make([]Sample, 0, len(tasks))
	for i, t := range tasks {
		opts.Obs.Merge(stages[i])
		ds.Samples = append(ds.Samples, Sample{Workload: t.w, Config: t.cfg.Clone(), Throughput: tputs[i]})
	}
	return ds, nil
}
