package anova

import (
	"math"
	"testing"
)

func TestOneWayKnownValues(t *testing.T) {
	// Classic textbook example: three groups with clearly different
	// means and small within-group spread.
	groups := [][]float64{
		{6, 8, 4, 5, 3, 4},
		{8, 12, 9, 11, 6, 8},
		{13, 9, 11, 8, 7, 12},
	}
	tab, err := OneWay("factor", groups)
	if err != nil {
		t.Fatal(err)
	}
	if tab.N != 18 || tab.Groups != 3 || tab.DFB != 2 || tab.DFW != 15 {
		t.Errorf("shape: %+v", tab)
	}
	// Hand-computed: means 5, 9, 10; grand mean 8.
	wantSSB := 6.0 * (9 + 1 + 4)
	if math.Abs(tab.SSB-wantSSB) > 1e-9 {
		t.Errorf("SSB = %v, want %v", tab.SSB, wantSSB)
	}
	if tab.F <= 0 {
		t.Errorf("F = %v, want positive", tab.F)
	}
	if tab.P <= 0 || tab.P >= 0.05 {
		t.Errorf("P = %v, want significant (< 0.05)", tab.P)
	}
}

func TestOneWayNoEffect(t *testing.T) {
	groups := [][]float64{
		{10, 11, 9, 10},
		{10, 9, 11, 10},
	}
	tab, err := OneWay("nil-effect", groups)
	if err != nil {
		t.Fatal(err)
	}
	if tab.P < 0.5 {
		t.Errorf("P = %v; identical groups should not be significant", tab.P)
	}
	if tab.ResponseStdDev > 0.5 {
		t.Errorf("response stddev %v too large", tab.ResponseStdDev)
	}
}

func TestOneWaySingleSamplePerLevel(t *testing.T) {
	// The paper's protocol: one benchmark run per sweep value. F is
	// undefined; the ranking signal is the stddev of level means.
	tab, err := OneWay("sweep", [][]float64{{100}, {140}, {120}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.F != 0 || tab.P != 1 {
		t.Errorf("degenerate F/P = %v/%v, want 0/1", tab.F, tab.P)
	}
	if tab.ResponseStdDev != 20 {
		t.Errorf("ResponseStdDev = %v, want 20", tab.ResponseStdDev)
	}
}

func TestOneWayErrors(t *testing.T) {
	if _, err := OneWay("x", [][]float64{{1}}); err == nil {
		t.Error("single level should error")
	}
	if _, err := OneWay("x", [][]float64{{1}, {}}); err == nil {
		t.Error("empty level should error")
	}
}

func TestOneWayZeroWithinVariance(t *testing.T) {
	tab, err := OneWay("x", [][]float64{{5, 5}, {9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.F != 0 || tab.P != 1 {
		t.Errorf("zero SSW should degrade gracefully, got F=%v P=%v", tab.F, tab.P)
	}
}

func TestRankOrdersByResponseStdDev(t *testing.T) {
	sweeps := map[string][][]float64{
		"weak":   {{100}, {102}, {101}},
		"strong": {{100}, {200}, {150}},
		"medium": {{100}, {130}, {110}},
	}
	r, err := Rank(sweeps)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"strong", "medium", "weak"}
	got := r.TopK(3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
	if top := r.TopK(1); len(top) != 1 || top[0] != "strong" {
		t.Errorf("TopK(1) = %v", top)
	}
	if over := r.TopK(10); len(over) != 3 {
		t.Errorf("TopK over-length = %v", over)
	}
}

func TestRankPropagatesErrors(t *testing.T) {
	if _, err := Rank(map[string][][]float64{"bad": {{1}}}); err == nil {
		t.Error("bad sweep should error")
	}
}

func TestRankDeterministicTies(t *testing.T) {
	sweeps := map[string][][]float64{
		"b": {{100}, {120}},
		"a": {{100}, {120}},
		"c": {{100}, {120}},
	}
	var first []string
	for i := 0; i < 5; i++ {
		r, err := Rank(sweeps)
		if err != nil {
			t.Fatal(err)
		}
		got := r.TopK(3)
		if first == nil {
			first = got
			continue
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("tie order unstable: %v vs %v", got, first)
			}
		}
	}
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Errorf("ties should break alphabetically, got %v", first)
	}
}

func TestElbow(t *testing.T) {
	// Five strong parameters, then a cliff — the paper's k=5 situation.
	sweeps := map[string][][]float64{
		"p1": {{0}, {2000}},
		"p2": {{0}, {1500}},
		"p3": {{0}, {1200}},
		"p4": {{0}, {1000}},
		"p5": {{0}, {800}},
		"p6": {{0}, {50}},
		"p7": {{0}, {40}},
		"p8": {{0}, {30}},
	}
	r, err := Rank(sweeps)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Elbow(2, 7); got != 5 {
		t.Errorf("Elbow = %d, want 5", got)
	}
}

func TestElbowBounds(t *testing.T) {
	sweeps := map[string][][]float64{
		"p1": {{0}, {100}},
		"p2": {{0}, {10}},
	}
	r, err := Rank(sweeps)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Elbow(1, 10); got != 1 {
		t.Errorf("Elbow with clamped max = %d, want 1", got)
	}
	if got := r.Elbow(5, 10); got != 2 {
		t.Errorf("Elbow with minK beyond entries = %d, want 2", got)
	}
}
