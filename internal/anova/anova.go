// Package anova implements Rafiki's important-parameter-identification
// stage (Section 3.4): one-way analysis of variance over
// one-parameter-at-a-time sweeps. Each configuration parameter is
// varied while the rest stay at defaults, throughput samples are
// collected per level, and parameters are ranked by how strongly they
// move the response. A distinct drop in variance between rank k and
// k+1 selects the top-k "key parameters".
package anova

import (
	"fmt"
	"sort"

	"rafiki/internal/stats"
)

// Table is a one-way ANOVA decomposition for a single factor.
type Table struct {
	// Factor names the parameter analyzed.
	Factor string
	// Groups is the number of factor levels, N the total sample count.
	Groups, N int
	// SSB and SSW are the between-group and within-group sums of
	// squares; DFB and DFW the matching degrees of freedom.
	SSB, SSW float64
	DFB, DFW int
	// F is the test statistic MS_between / MS_within and P its
	// right-tail p-value under the F distribution.
	F, P float64
	// GroupMeans holds the mean response per level, in input order.
	GroupMeans []float64
	// ResponseStdDev is the standard deviation of the per-level mean
	// responses — the ranking signal plotted in the paper's Figure 5.
	ResponseStdDev float64
}

// OneWay computes a one-way ANOVA over groups of samples, one group per
// factor level. Every group needs at least one sample, and at least two
// groups are required.
func OneWay(factor string, groups [][]float64) (Table, error) {
	if len(groups) < 2 {
		return Table{}, fmt.Errorf("anova: factor %q needs >= 2 levels, got %d", factor, len(groups))
	}
	var (
		n     int
		total float64
	)
	for i, g := range groups {
		if len(g) == 0 {
			return Table{}, fmt.Errorf("anova: factor %q level %d has no samples", factor, i)
		}
		n += len(g)
		total += stats.Sum(g)
	}
	grand := total / float64(n)

	t := Table{
		Factor:     factor,
		Groups:     len(groups),
		N:          n,
		DFB:        len(groups) - 1,
		DFW:        n - len(groups),
		GroupMeans: make([]float64, 0, len(groups)),
	}
	for _, g := range groups {
		mean := stats.Mean(g)
		t.GroupMeans = append(t.GroupMeans, mean)
		d := mean - grand
		t.SSB += float64(len(g)) * d * d
		for _, x := range g {
			w := x - mean
			t.SSW += w * w
		}
	}
	t.ResponseStdDev = stats.StdDev(t.GroupMeans)

	if t.DFW <= 0 || t.SSW == 0 {
		// With one sample per level (the paper's sweep protocol) there
		// is no within-group variance; the F statistic is undefined and
		// ranking falls back to ResponseStdDev.
		t.F = 0
		t.P = 1
		return t, nil
	}
	msb := t.SSB / float64(t.DFB)
	msw := t.SSW / float64(t.DFW)
	if msw == 0 {
		t.F = 0
		t.P = 1
		return t, nil
	}
	t.F = msb / msw
	p, err := stats.FPValue(t.F, float64(t.DFB), float64(t.DFW))
	if err != nil {
		return Table{}, fmt.Errorf("anova: factor %q p-value: %w", factor, err)
	}
	t.P = p
	return t, nil
}

// Ranking is the ordered result of analyzing every parameter.
type Ranking struct {
	// Entries are sorted by descending ResponseStdDev.
	Entries []Table
}

// Rank analyzes each factor's sweep groups and sorts by response
// standard deviation, the paper's Figure 5 ordering.
func Rank(sweeps map[string][][]float64) (Ranking, error) {
	entries := make([]Table, 0, len(sweeps))
	names := make([]string, 0, len(sweeps))
	for name := range sweeps {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tie-breaking
	for _, name := range names {
		t, err := OneWay(name, sweeps[name])
		if err != nil {
			return Ranking{}, err
		}
		entries = append(entries, t)
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].ResponseStdDev > entries[j].ResponseStdDev
	})
	return Ranking{Entries: entries}, nil
}

// TopK returns the first k factor names.
func (r Ranking) TopK(k int) []string {
	if k > len(r.Entries) {
		k = len(r.Entries)
	}
	out := make([]string, 0, k)
	for _, e := range r.Entries[:k] {
		out = append(out, e.Factor)
	}
	return out
}

// Elbow selects k by the paper's rule: "a distinct drop in the variance
// when going from top-k to top-(k+1)". It scans for the largest
// relative drop between consecutive ranked standard deviations within
// [minK, maxK] and returns the count before the drop.
func (r Ranking) Elbow(minK, maxK int) int {
	if minK < 1 {
		minK = 1
	}
	if maxK > len(r.Entries)-1 {
		maxK = len(r.Entries) - 1
	}
	if maxK < minK {
		return min(minK, len(r.Entries))
	}
	bestK := minK
	bestDrop := -1.0
	for k := minK; k <= maxK; k++ {
		cur := r.Entries[k-1].ResponseStdDev
		next := r.Entries[k].ResponseStdDev
		if cur <= 0 {
			continue
		}
		drop := (cur - next) / cur
		if drop > bestDrop {
			bestDrop = drop
			bestK = k
		}
	}
	return bestK
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
