package bench

import (
	"fmt"
	"math"

	"rafiki/internal/core"
	"rafiki/internal/stats"
)

// Figure4 regenerates the headline result: throughput of the default
// configuration vs Rafiki's optimized configuration across the workload
// range, with exhaustive-search reference points at three workloads
// (Section 4.8 / Figure 4).
func Figure4(p *Pipeline) (Report, error) {
	workloads := p.Dataset.Workloads()
	gridRRs := map[float64]bool{0.1: true, 0.5: true, 0.9: true}
	grid := GridConfigs()

	t := Table{
		Title:  "Throughput (ops/s): Default vs Rafiki vs exhaustive grid",
		Header: []string{"RR", "default", "rafiki", "gain", "exhaustive", "rafiki/exhaustive"},
	}
	var gains, readHeavyGains, writeHeavyGains []float64
	var ratioVsExhaustive []float64
	seed := p.Opts.Env.Seed + 70_000
	for _, w := range workloads {
		rr := w.ReadRatio
		seed += 1000
		def, err := p.MeasureDefault(w, seed)
		if err != nil {
			return Report{}, err
		}
		_, rafiki, err := p.RecommendAndMeasure(w, seed+1)
		if err != nil {
			return Report{}, err
		}
		gain := (rafiki - def) / def
		gains = append(gains, gain)
		if rr >= 0.7 {
			readHeavyGains = append(readHeavyGains, gain)
		}
		if rr <= 0.3 {
			writeHeavyGains = append(writeHeavyGains, gain)
		}

		exhaust, ratio := "-", "-"
		if gridRRs[math.Round(rr*10)/10] {
			gr, err := GridSearch(p.Collector, w, grid, seed+2)
			if err != nil {
				return Report{}, err
			}
			exhaust = f0(gr.BestThroughput)
			if gr.BestThroughput > 0 {
				r := rafiki / gr.BestThroughput
				ratio = pct(r)
				ratioVsExhaustive = append(ratioVsExhaustive, r)
			}
		}
		t.Rows = append(t.Rows, []string{
			pct(rr), f0(def), f0(rafiki), pct(gain), exhaust, ratio,
		})
	}

	notes := []string{
		fmt.Sprintf("measured: mean gain over default %s; read-heavy (RR>=70%%) %s; write-heavy (RR<=30%%) %s",
			pct(stats.Mean(gains)), pct(stats.Mean(readHeavyGains)), pct(stats.Mean(writeHeavyGains))),
		"paper: ~30% average gain; ~41% (39-45%) read-heavy; ~14% (6-24%) write-heavy; Rafiki within 15% of the exhaustive best",
	}
	if len(ratioVsExhaustive) > 0 {
		notes = append(notes, fmt.Sprintf("measured: Rafiki reaches %s of the exhaustive best on average",
			pct(stats.Mean(ratioVsExhaustive))))
	}
	return Report{
		ID:     "figure4",
		Title:  "Default vs Rafiki-optimized Cassandra throughput across workloads",
		Tables: []Table{t},
		Notes:  notes,
	}, nil
}

// Table1 regenerates the configuration-sensitivity table: maximum,
// default, and minimum throughput over the collected configuration set
// for read-heavy, mixed, and write-heavy workloads (Section 4.6).
func Table1(p *Pipeline) (Report, error) {
	t := Table{
		Title:  "Cassandra max/default/min throughput over the collected configurations",
		Header: []string{"workload", "maximum", "default", "minimum", "max over min", "default over min"},
	}
	var notes []string
	for _, rr := range []float64{0.9, 0.5, 0.1} {
		var maxT, minT float64
		minT = math.Inf(1)
		var defT float64
		seen := false
		for _, s := range p.Dataset.Samples {
			if math.Abs(s.Workload.ReadRatio-rr) > 1e-9 || s.Workload.ScanRatio != 0 {
				continue
			}
			seen = true
			if s.Throughput > maxT {
				maxT = s.Throughput
			}
			if s.Throughput < minT {
				minT = s.Throughput
			}
			if len(s.Config) == 0 {
				defT = s.Throughput
			}
		}
		if !seen {
			return Report{}, fmt.Errorf("bench: dataset lacks workload RR=%v", rr)
		}
		if defT == 0 {
			d, err := p.MeasureDefault(core.RR(rr), p.Opts.Env.Seed+80_000)
			if err != nil {
				return Report{}, err
			}
			defT = d
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("read=%.0f%%", rr*100),
			f0(maxT), f0(defT), f0(minT),
			pct(maxT/minT - 1), pct(defT/minT - 1),
		})
	}
	notes = append(notes,
		"paper: read=90%: max 78,556 / default 53,461 / min 38,785 (max 102.5% over min); read=50%: 68.5% over min; read=10%: 30.7% over min",
		"the spread must widen as the workload becomes read-heavy — compaction-related parameters gate read amplification",
	)
	return Report{
		ID:     "table1",
		Title:  "Throughput sensitivity to configuration across workloads",
		Tables: []Table{t},
		Notes:  notes,
	}, nil
}

// SearchSpeed regenerates Section 4.8's search-cost analysis: the GA
// over the surrogate vs exhaustive measurement, in both surrogate-call
// counts and projected wall-clock time.
func SearchSpeed(p *Pipeline) (Report, error) {
	w := core.RR(0.9)
	rec, err := p.Recommend(w)
	if err != nil {
		return Report{}, err
	}
	searchSize, err := p.Space.SearchSpaceSize()
	if err != nil {
		return Report{}, err
	}

	// The paper prices one real sample at ~7 minutes (2 min load + 5
	// min stable measurement) and one surrogate call at ~45us.
	const (
		minutesPerRealSample = 7.0
		secondsPerSurrogate  = 45e-6
	)
	gaSeconds := float64(rec.Evaluations) * secondsPerSurrogate
	exhaustiveHours := float64(searchSize) * minutesPerRealSample / 60

	grid := GridConfigs()
	gr, err := GridSearch(p.Collector, w, grid, p.Opts.Env.Seed+90_000)
	if err != nil {
		return Report{}, err
	}
	_, rafikiMeasured, err := p.RecommendAndMeasure(w, p.Opts.Env.Seed+90_500)
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "Search cost: GA over surrogate vs exhaustive measurement (RR=90%)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"surrogate evaluations (GA)", fmt.Sprintf("%d", rec.Evaluations)},
			{"GA search time (projected)", fmt.Sprintf("%.2f s", gaSeconds)},
			{"quantized search space", fmt.Sprintf("%d configurations", searchSize)},
			{"exhaustive search time (projected)", fmt.Sprintf("%.0f hours", exhaustiveHours)},
			{"speedup", fmt.Sprintf("%.0fx", exhaustiveHours*3600/gaSeconds)},
			{"grid-best measured throughput", f0(gr.BestThroughput)},
			{"rafiki measured throughput", f0(rafikiMeasured)},
			{"rafiki vs grid best", pct(rafikiMeasured / gr.BestThroughput)},
		},
	}
	return Report{
		ID:     "searchspeed",
		Title:  "GA+surrogate search cost vs exhaustive grid search",
		Tables: []Table{t},
		Notes: []string{
			"paper: ~3,350 surrogate evaluations in ~1.8s; exhaustive search ~2,080 hours; Rafiki uses ~1/10,000th of the search time and reaches within 15% of the best achievable performance",
		},
	}, nil
}
