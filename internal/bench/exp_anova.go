package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/core"
)

// Figure5 regenerates the ANOVA ranking of Cassandra's configuration
// parameters (Section 4.5): each parameter swept one at a time with the
// rest at defaults, ranked by the standard deviation of mean throughput
// across sweep values. The paper reports compaction strategy far ahead
// (~11x concurrent_writes), a cluster of memtable/cache parameters
// next, and a long tail of insignificant ones.
func Figure5(env Env) (Report, error) {
	space := config.Cassandra()
	id, err := core.IdentifyKeyParameters(env.CassandraCollector(), space, core.IdentifyOptions{
		ReadRatio: 0.5,
		MinK:      4,
		MaxK:      8,
		Repeats:   1,
		Seed:      env.Seed + 50_000,
	})
	if err != nil {
		return Report{}, err
	}

	selected := make(map[string]bool, len(id.KeyNames))
	for _, n := range id.KeyNames {
		selected[n] = true
	}
	t := Table{
		Title:  "ANOVA ranking: std dev of mean throughput across one-parameter sweeps (top 20)",
		Header: []string{"rank", "parameter", "response std dev (ops/s)", "selected"},
	}
	for i, e := range id.Ranking.Entries {
		if i >= 20 {
			break
		}
		mark := ""
		if selected[e.Factor] {
			mark = "KEY"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), e.Factor, f0(e.ResponseStdDev), mark,
		})
	}

	notes := []string{
		fmt.Sprintf("selected %d key parameters by the elbow rule: %v", len(id.KeyNames), id.KeyNames),
		"paper: 5 key parameters (compaction strategy, concurrent_writes, file_cache_size_in_mb, memtable_cleanup_threshold, concurrent_compactors); compaction strategy's std dev ~11x concurrent_writes",
	}
	if len(id.Ranking.Entries) >= 2 && id.Ranking.Entries[1].ResponseStdDev > 0 {
		ratio := id.Ranking.Entries[0].ResponseStdDev / id.Ranking.Entries[1].ResponseStdDev
		notes = append(notes, fmt.Sprintf("measured: top parameter's std dev is %.1fx the runner-up's", ratio))
	}
	return Report{
		ID:     "figure5",
		Title:  "ANOVA key-parameter identification for Cassandra",
		Tables: []Table{t},
		Notes:  notes,
	}, nil
}

// Figure6 regenerates the parameter-interdependency demonstration
// (Section 4.6): the effect of doubling concurrent_writes depends on
// the compaction strategy, which is why greedy one-at-a-time tuning
// fails.
func Figure6(env Env) (Report, error) {
	const rr = 0.5
	strategies := []struct {
		name  string
		value float64
	}{
		{"SizeTiered", config.CompactionSizeTiered},
		{"Leveled", config.CompactionLeveled},
	}
	cwValues := []float64{16, 32, 64}

	results := make(map[string]map[float64]float64)
	seed := env.Seed + 60_000
	for _, s := range strategies {
		results[s.name] = make(map[float64]float64)
		for _, cw := range cwValues {
			seed++
			tput, err := env.CassandraSample(core.RR(rr), config.Config{
				config.ParamCompactionStrategy: s.value,
				config.ParamConcurrentWrites:   cw,
			}, seed)
			if err != nil {
				return Report{}, err
			}
			results[s.name][cw] = tput
		}
	}

	t := Table{
		Title:  "Throughput (ops/s) at RR=50% by compaction strategy x concurrent writers",
		Header: []string{"concurrent_writes", "SizeTiered", "Leveled"},
	}
	for _, cw := range cwValues {
		t.Rows = append(t.Rows, []string{
			f0(cw), f0(results["SizeTiered"][cw]), f0(results["Leveled"][cw]),
		})
	}

	delta := func(name string, a, b float64) string {
		va, vb := results[name][a], results[name][b]
		if va == 0 {
			return "n/a"
		}
		return pct((vb - va) / va)
	}
	effects := Table{
		Title:  "Effect of doubling concurrent_writes, by strategy",
		Header: []string{"change", "SizeTiered", "Leveled"},
		Rows: [][]string{
			{"CW 16 -> 32", delta("SizeTiered", 16, 32), delta("Leveled", 16, 32)},
			{"CW 32 -> 64", delta("SizeTiered", 32, 64), delta("Leveled", 32, 64)},
		},
	}

	return Report{
		ID:     "figure6",
		Title:  "Interdependency between compaction strategy and concurrent writers",
		Tables: []Table{t, effects},
		Notes: []string{
			"paper: CW 16->32 improves SizeTiered ~+30% but barely moves Leveled; CW 32->64 hurts Leveled ~-12.7% but barely moves SizeTiered",
			"the qualitative claim under test: the optimal CW depends on the compaction strategy, so greedy one-at-a-time tuning is suboptimal",
		},
	}, nil
}
