package bench

import (
	"fmt"

	"rafiki/internal/frontdoor"
)

// fmtQ renders a virtual-seconds latency quantile.
func fmtQ(v float64) string { return fmt.Sprintf("%.1fus", v*1e6) }

// FrontDoor demonstrates the multi-tenant front door: the standard
// overload serving scenario (2000 tenants in steady / bursty / greedy
// classes, a coordinator-link partition and a straggler overlapping a
// 2.5x demand surge) run once at the environment seed, reported as a
// per-class breakdown — who was admitted, who was shed and by which
// mechanism, and what tail latency the survivors saw.
func FrontDoor(env Env) (Report, error) {
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	seed := env.Seed + 170_000
	res, stats, err := frontdoor.OverloadScenario(seed, frontdoor.OverloadConfig{})
	if err != nil {
		return Report{}, err
	}
	// Determinism cross-check: the same seed must shed the same set.
	again, _, err := frontdoor.OverloadScenario(seed, frontdoor.OverloadConfig{})
	if err != nil {
		return Report{}, err
	}
	identical := res.ShedDigest == again.ShedDigest && res.Makespan == again.Makespan

	classes := Table{
		Title:  "Per-class front-door outcomes (3 nodes, RF=3, QUORUM/QUORUM, partition + straggler + 2.5x surge)",
		Header: []string{"class", "tenants", "arrivals", "admitted", "completed", "shed rate", "shed queue", "shed deadline", "p50", "p99", "p99.9"},
	}
	for _, c := range res.Classes {
		classes.Rows = append(classes.Rows, []string{
			c.Name, fmt.Sprint(c.Tenants), fmt.Sprint(c.Arrivals), fmt.Sprint(c.Admitted),
			fmt.Sprint(c.Completed), fmt.Sprint(c.ShedRateLimited), fmt.Sprint(c.ShedQueueFull),
			fmt.Sprint(c.ShedDeadline), fmtQ(c.P50), fmtQ(c.P99), fmtQ(c.P999),
		})
	}

	compliance := 1.0
	if len(res.Windows) > 0 {
		compliance = 1 - float64(res.SLOViolations)/float64(len(res.Windows))
	}
	summary := Table{
		Title:  "Run summary",
		Header: []string{"arrivals", "admitted", "completed", "failed ops", "max depth", "max in-flight", "slo windows", "violated", "breaker opens", "rpc lost", "shed digest"},
		Rows: [][]string{{
			fmt.Sprint(res.Arrivals), fmt.Sprint(res.Admitted), fmt.Sprint(res.Completed),
			fmt.Sprint(res.FailedOps), fmt.Sprint(res.MaxQueueDepth), fmt.Sprint(res.MaxInFlight),
			fmt.Sprint(len(res.Windows)), fmt.Sprint(res.SLOViolations),
			fmt.Sprint(stats.BreakerOpens), fmt.Sprint(stats.RPCLostTimeouts),
			fmt.Sprintf("%016x", res.ShedDigest),
		}},
	}

	return Report{
		ID:     "frontdoor",
		Title:  "Multi-tenant front door: admission control, backpressure, and load shedding under overload",
		Tables: []Table{classes, summary},
		Notes: []string{
			"steady tenants (80% of fleet) carry modest Poisson load and are the protected class; bursty tenants compress the same mean load into 4x-intense ON dwells; greedy tenants each offer far more than their token bucket admits",
			"every admission decision is deterministic in the seed: token bucket, bounded FIFO-per-tenant queue, then deadline check at dispatch",
			fmt.Sprintf("SLO window compliance: %.3f (%d of %d windows violated the p99 ceiling)", compliance, res.SLOViolations, len(res.Windows)),
			fmt.Sprintf("determinism: a second run at the same seed sheds the identical set and finishes at the same virtual time = %v", identical),
		},
	}, nil
}

// SLO runs the overload chaos harness over its fixed seed set and fails
// if any seed misses its verdict: admitted traffic must hold the p99
// SLO in >= 90% of windows, shedding must be deterministic (each seed
// is run twice and the shed digests and obs snapshots must match
// byte-for-byte), and no admitted request may violate read-your-writes
// or monotonic reads. This is the `make slo` gate.
func SLO(env Env) (Report, error) {
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	rep, err := frontdoor.RunOverload(frontdoor.OverloadConfig{})
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "Overload chaos verdicts (fixed seed set; each seed run twice for the determinism cross-check)",
		Header: []string{"seed", "verdict", "arrivals", "admitted", "completed", "shed rate", "shed queue", "shed deadline", "depth", "compliance", "steady p99", "breaker opens", "rpc lost", "digest"},
	}
	for _, o := range rep.Outcomes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(o.Seed), o.Verdict, fmt.Sprint(o.Arrivals), fmt.Sprint(o.Admitted),
			fmt.Sprint(o.Completed), fmt.Sprint(o.ShedRateLimited), fmt.Sprint(o.ShedQueueFull),
			fmt.Sprint(o.ShedDeadline), fmt.Sprint(o.MaxQueueDepth),
			fmt.Sprintf("%.3f", o.Compliance), fmtQ(o.SteadyP99),
			fmt.Sprint(o.BreakerOpens), fmt.Sprint(o.RPCLost), fmt.Sprintf("%016x", o.Digest),
		})
	}

	report := Report{
		ID:     "slo",
		Title:  "SLO gate: front-door overload chaos over the fixed seed set",
		Tables: []Table{t},
		Notes: []string{
			"a seed passes only if: >= 90% of SLO windows meet the p99 ceiling, the run sheds (the schedule must actually overload), both runs at the seed produce identical shed digests and byte-identical obs snapshots, and the admitted-request history is clean under read-your-writes and monotonic reads",
			fmt.Sprintf("failures: %d of %d seeds", rep.Failures, len(rep.Outcomes)),
		},
	}
	if gerr := rep.Err(); gerr != nil {
		return report, gerr
	}
	return report, nil
}
