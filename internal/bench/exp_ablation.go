package bench

import (
	"fmt"
	"math/rand"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
	"rafiki/internal/obs"
	"rafiki/internal/stats"
	"rafiki/internal/tree"
)

// AblationSearch compares Rafiki's GA+surrogate against the measured
// baselines the paper argues against: greedy one-parameter-at-a-time
// tuning (defeated by interdependence, Section 4.6) and budget-matched
// random sampling of real configurations.
func AblationSearch(p *Pipeline) (Report, error) {
	const rr = 0.9
	env := p.Opts.Env
	seed := env.Seed + 130_000

	def, err := p.MeasureDefault(core.RR(rr), seed)
	if err != nil {
		return Report{}, err
	}
	rec, rafiki, err := p.RecommendAndMeasure(core.RR(rr), seed+1)
	if err != nil {
		return Report{}, err
	}
	greedy, err := GreedySearch(p.Collector, p.Space, core.RR(rr), seed+100)
	if err != nil {
		return Report{}, err
	}
	// Budget-match random search to greedy's real-sample count.
	random, err := RandomSearch(p.Collector, p.Space, core.RR(rr), greedy.Samples, seed+200)
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "Search strategies at RR=90% (measured throughput)",
		Header: []string{"strategy", "throughput", "gain over default", "real samples", "surrogate calls"},
		Rows: [][]string{
			{"default", f0(def), "-", "0", "0"},
			{"greedy one-at-a-time", f0(greedy.BestThroughput), pct(greedy.BestThroughput/def - 1), fmt.Sprintf("%d", greedy.Samples), "0"},
			{"random (budget-matched)", f0(random.BestThroughput), pct(random.BestThroughput/def - 1), fmt.Sprintf("%d", random.Samples), "0"},
			{"rafiki (GA+surrogate)", f0(rafiki), pct(rafiki/def - 1), "1", fmt.Sprintf("%d", rec.Evaluations)},
		},
	}
	return Report{
		ID:     "ablation-search",
		Title:  "Search-strategy ablation",
		Tables: []Table{t},
		Notes: []string{
			"paper's claim under test: greedy tuning is suboptimal because parameter effects interdepend (Figure 6); Rafiki needs only surrogate calls online",
		},
	}, nil
}

// AblationTrainer compares the Bayesian-regularized LM trainer against
// plain gradient descent on the same dataset and splits — the design
// choice Section 3.6.2 motivates.
func AblationTrainer(p *Pipeline) (Report, error) {
	t := Table{
		Title:  "Surrogate trainer ablation (unseen-configuration MAPE %)",
		Header: []string{"trial", "LM + Bayesian regularization", "gradient descent"},
	}
	const trials = 3
	type pair struct{ br, gd float64 }
	pairs, err := runTrials(p, "ablation-trainer", trials, func(trial int, reg *obs.Registry) (pair, error) {
		train, test := splitConfigs(p, 0.25, p.Opts.Env.Seed+int64(trial)*13)

		brCfg := p.Opts.Model
		brCfg.Trainer = nn.TrainerBR
		brCfg.EnsembleSize = 6
		brCfg.Seed = p.Opts.Model.Seed + int64(trial)
		brCfg.Obs = reg
		brEval, err := evalSplit(p, train, test, brCfg)
		if err != nil {
			return pair{}, err
		}

		gdCfg := brCfg
		gdCfg.Trainer = nn.TrainerGD
		gdEval, err := evalSplit(p, train, test, gdCfg)
		if err != nil {
			return pair{}, err
		}
		return pair{br: brEval.MAPE, gd: gdEval.MAPE}, nil
	})
	if err != nil {
		return Report{}, err
	}
	var brSum, gdSum float64
	for trial, pr := range pairs {
		brSum += pr.br
		gdSum += pr.gd
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", trial+1), f1(pr.br), f1(pr.gd),
		})
	}
	t.Rows = append(t.Rows, []string{"mean", f1(brSum / trials), f1(gdSum / trials)})
	return Report{
		ID:     "ablation-trainer",
		Title:  "Bayesian-regularized LM vs gradient descent",
		Tables: []Table{t},
		Notes: []string{
			"design choice under test: trainbr-style training with a small sparse dataset (Section 3.6.2) vs a plain first-order method",
		},
	}, nil
}

// AblationModel reproduces Section 3.7.2's interpretability experiment:
// a single-variable-per-node decision tree, the same tree with linear
// models in its leaves, and the DNN ensemble, all trained on the same
// splits and scored on unseen configurations. The paper found the plain
// tree "woefully inadequate", the linear variant better, and kept the
// DNN for expressivity.
func AblationModel(p *Pipeline) (Report, error) {
	t := Table{
		Title:  "Surrogate model ablation (unseen-configuration MAPE %)",
		Header: []string{"trial", "decision tree", "tree + linear leaves", "DNN ensemble"},
	}
	const trials = 3
	cells, err := runTrials(p, "ablation-model", trials, func(trial int, reg *obs.Registry) ([3]float64, error) {
		var cell [3]float64
		train, test := splitConfigs(p, 0.25, p.Opts.Env.Seed+int64(trial)*13)
		trainX, trainY, err := train.Features(p.Space)
		if err != nil {
			return cell, err
		}
		testX, testY, err := test.Features(p.Space)
		if err != nil {
			return cell, err
		}

		evalTree := func(linear bool) (float64, error) {
			opts := tree.DefaultOptions()
			opts.LinearLeaves = linear
			if linear {
				// Leaf linear models need enough points per leaf to fit
				// seven coefficients without memorizing noise.
				opts.MinLeaf = 20
				opts.Ridge = 0.05
			}
			tr, err := tree.Fit(trainX, trainY, opts)
			if err != nil {
				return 0, err
			}
			preds := make([]float64, len(testX))
			for i, x := range testX {
				preds[i], err = tr.Predict(x)
				if err != nil {
					return 0, err
				}
			}
			return stats.MAPE(preds, testY)
		}
		plain, err := evalTree(false)
		if err != nil {
			return cell, err
		}
		linear, err := evalTree(true)
		if err != nil {
			return cell, err
		}

		dnnCfg := p.Opts.Model
		dnnCfg.EnsembleSize = 6
		dnnCfg.Seed = p.Opts.Model.Seed + int64(trial)
		dnnCfg.Obs = reg
		dnnEval, err := evalSplit(p, train, test, dnnCfg)
		if err != nil {
			return cell, err
		}
		return [3]float64{plain, linear, dnnEval.MAPE}, nil
	})
	if err != nil {
		return Report{}, err
	}
	var sums [3]float64
	for trial, cell := range cells {
		for i, v := range cell {
			sums[i] += v
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", trial+1), f1(cell[0]), f1(cell[1]), f1(cell[2]),
		})
	}
	t.Rows = append(t.Rows, []string{"mean", f1(sums[0] / trials), f1(sums[1] / trials), f1(sums[2] / trials)})
	return Report{
		ID:     "ablation-model",
		Title:  "Interpretable models vs the DNN surrogate",
		Tables: []Table{t},
		Notes: []string{
			"paper (Section 3.7.2): the single-variable decision tree was woefully inadequate; linear-combination nodes improved it; the DNN was kept for expressivity at the cost of interpretability",
			"shape under test: DNN < linear-leaf tree < plain tree in prediction error",
		},
	}, nil
}

// AblationSurrogateSearch compares stochastic searchers over the SAME
// trained surrogate: the paper's GA, simulated annealing, and uniform
// random sampling, all budgeted to roughly the same evaluation count.
func AblationSurrogateSearch(p *Pipeline) (Report, error) {
	const rr = 0.9
	prefix := core.RR(rr).Vector()
	keys, err := p.Space.KeyParams()
	if err != nil {
		return Report{}, err
	}
	bounds := make([]ga.Bound, len(keys))
	for i, kp := range keys {
		bounds[i] = ga.Bound{Min: kp.Min, Max: kp.Max, Integer: kp.Kind != config.Continuous}
	}
	// Batch scratch reused across generations, mirroring
	// core.Surrogate.Optimize: one feature vector per individual, grown
	// once and rewritten in place.
	var vecs [][]float64
	problem := ga.Problem{
		Bounds: bounds,
		Fitness: func(genes []float64) (float64, error) {
			vec := append(append([]float64{}, prefix...), genes...)
			return p.Surrogate.Model.Predict(vec)
		},
		BatchFitness: func(genes [][]float64, out []float64) error {
			for len(vecs) < len(genes) {
				vecs = append(vecs, nil)
			}
			for i, g := range genes {
				v := append(vecs[i][:0], prefix...)
				vecs[i] = append(v, g...)
			}
			return p.Surrogate.Model.PredictBatchInto(out, vecs[:len(genes)])
		},
	}

	gaRes, err := ga.Run(problem, p.Opts.GA)
	if err != nil {
		return Report{}, err
	}
	annealOpts := ga.DefaultAnnealOptions()
	annealOpts.Seed = p.Opts.GA.Seed
	saRes, err := ga.Anneal(problem, annealOpts)
	if err != nil {
		return Report{}, err
	}

	// Random baseline with the GA's budget.
	rng := rand.New(rand.NewSource(p.Opts.GA.Seed + 7))
	var randBest float64
	var randGenes []float64
	for i := 0; i < gaRes.Evaluations; i++ {
		genes := make([]float64, len(bounds))
		for j, b := range bounds {
			genes[j] = b.Min + rng.Float64()*(b.Max-b.Min)
		}
		genes = ga.Repair(genes, bounds)
		v, err := problem.Fitness(genes)
		if err != nil {
			return Report{}, err
		}
		if v > randBest {
			randBest = v
			randGenes = genes
		}
	}

	measure := func(genes []float64, seed int64) (float64, error) {
		cfg, err := p.Space.ConfigFromVector(genes)
		if err != nil {
			return 0, err
		}
		return p.Collector.Sample(core.RR(rr), cfg, seed)
	}
	seed := p.Opts.Env.Seed + 140_000
	gaMeasured, err := measure(gaRes.Best, seed)
	if err != nil {
		return Report{}, err
	}
	saMeasured, err := measure(saRes.Best, seed+1)
	if err != nil {
		return Report{}, err
	}
	randMeasured, err := measure(randGenes, seed+2)
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "Searchers over the same surrogate (RR=90%)",
		Header: []string{"searcher", "surrogate best", "measured", "evaluations"},
		Rows: [][]string{
			{"genetic algorithm", f0(gaRes.BestFitness), f0(gaMeasured), fmt.Sprintf("%d", gaRes.Evaluations)},
			{"simulated annealing", f0(saRes.BestFitness), f0(saMeasured), fmt.Sprintf("%d", saRes.Evaluations)},
			{"random sampling", f0(randBest), f0(randMeasured), fmt.Sprintf("%d", gaRes.Evaluations)},
		},
	}
	return Report{
		ID:     "ablation-surrogate-search",
		Title:  "GA vs annealing vs random over the trained surrogate",
		Tables: []Table{t},
		Notes: []string{
			"the paper picked a GA as a robust stochastic searcher (Section 3.7.2); this checks the choice against budget-matched alternatives",
		},
	}, nil
}
