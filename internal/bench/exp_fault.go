package bench

import (
	"fmt"

	"rafiki/internal/cluster"
	"rafiki/internal/config"
	"rafiki/internal/fault"
	"rafiki/internal/workload"
)

// faultOutcome is one resilience posture's run under the shared fault
// schedule.
type faultOutcome struct {
	throughput float64
	seconds    float64
	stats      cluster.Stats
	lost       int
	replayed   uint64
}

// faultSchedule builds the experiment's adversity, scaled to the
// healthy run's duration T so the windows land mid-run regardless of
// the configured op count. Phases in order: a transient-failure window
// on node 0 with a fail-stop outage of node 2 inside it (QUORUM reads
// then need node 0 to answer, so unretried transient failures turn
// into unavailability); a crash-restart of node 0 with a torn
// commit-log tail; and a straggler degradation of node 1 that persists
// past the end of the run — the failing-disk case that paces an
// unprotected cluster until an operator intervenes, and exactly what
// per-op timeouts and speculative reads are for.
func faultSchedule(T float64) fault.Schedule {
	return fault.Schedule{
		{Kind: fault.Transient, Node: 0, At: 0.08 * T, Until: 0.45 * T, FailProb: 0.15},
		{Kind: fault.Fail, Node: 2, At: 0.25 * T, Until: 0.40 * T},
		{Kind: fault.Restart, Node: 0, At: 0.55 * T, CorruptFraction: 0.3},
		{Kind: fault.Slow, Node: 1, At: 0.65 * T, Until: 20 * T, DiskTax: 25, CPUTax: 4},
	}
}

// runFaultPosture benchmarks one resilience posture under the shared
// schedule (nil schedule = healthy baseline) and returns the outcome.
func runFaultPosture(env Env, res cluster.ResilienceOptions, sched fault.Schedule, seed int64) (faultOutcome, error) {
	c, err := cluster.New(cluster.Options{
		Nodes:             3,
		ReplicationFactor: 3,
		Space:             config.Cassandra(),
		Seed:              env.Seed ^ seed,
		// Node clocks advance only at epoch closes; short epochs keep
		// them fine-grained enough that no schedule window can slip
		// between two closes unobserved.
		EpochOps: 128,
		Obs:      env.Obs,
	})
	if err != nil {
		return faultOutcome{}, err
	}
	c.Preload(env.PreloadVersions)
	if err := c.SetReadConsistency(cluster.ConsistencyQuorum); err != nil {
		return faultOutcome{}, err
	}
	if err := c.SetResilience(res); err != nil {
		return faultOutcome{}, err
	}
	inj, err := fault.NewInjector(c, sched, env.Seed^seed^0x5EED)
	if err != nil {
		return faultOutcome{}, err
	}
	c.SetFaultInjector(inj)
	h := fault.NewHarness(c, inj)
	result, err := workload.Run(h, workload.Spec{
		ReadRatio: 0.5,
		KRDMean:   env.KRDFraction * float64(c.KeySpace()),
		Ops:       env.SampleOps,
		Seed:      seed + 101,
	})
	if err != nil {
		return faultOutcome{}, err
	}
	// Fire any events scheduled past the measured window (recoveries)
	// so every posture ends converged, then surface injector errors.
	inj.Finish()
	if err := inj.Err(); err != nil {
		return faultOutcome{}, fmt.Errorf("bench: fault schedule: %w", err)
	}
	m := c.Metrics()
	return faultOutcome{
		throughput: result.Throughput,
		seconds:    result.Seconds,
		stats:      c.Stats(),
		lost:       inj.LostRecords(),
		replayed:   m.ReplayedRecords,
	}, nil
}

// FaultInjection quantifies what the coordinator's resilience machinery
// buys under a deterministic fault schedule: the same seeded adversity
// (transient failures, a heavy straggler, a fail-stop outage, a
// crash-restart with a torn commit log) replayed against three
// postures — no resilience, bounded retries only, and the full stack
// (retries + per-op timeouts + speculative reads). The full run is
// executed twice to demonstrate bit-identical reproducibility.
func FaultInjection(env Env) (Report, error) {
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	const seed = 130_000

	// Healthy baseline fixes the schedule's time base and the
	// no-fault throughput reference.
	healthy, err := runFaultPosture(env, cluster.PassiveResilience(), nil, seed)
	if err != nil {
		return Report{}, err
	}
	sched := faultSchedule(healthy.seconds)

	// Scale the coordinator's time constants to the measured healthy
	// op cost, as a dynamic snitch does from observed latencies: the
	// wall-clock defaults (milliseconds) would dwarf the simulator's
	// microsecond-scale ops and turn every wait into an eternity.
	perOp := healthy.seconds / float64(env.SampleOps)

	retriesOnly := cluster.PassiveResilience()
	retriesOnly.MaxRetries = 3
	retriesOnly.BackoffBase = perOp
	retriesOnly.BackoffMax = 25 * perOp

	full := cluster.DefaultResilienceOptions()
	full.BackoffBase = perOp
	full.BackoffMax = 25 * perOp
	full.ExpectedOpSeconds = perOp
	full.OpTimeout = 20 * perOp

	postures := []struct {
		name string
		res  cluster.ResilienceOptions
	}{
		{"none", cluster.PassiveResilience()},
		{"retries", retriesOnly},
		{"full", full},
	}
	outcomes := make([]faultOutcome, len(postures))
	for i, p := range postures {
		// Same workload seed and same injector seed for every posture:
		// each faces the identical adversity.
		out, err := runFaultPosture(env, p.res, sched, seed)
		if err != nil {
			return Report{}, fmt.Errorf("bench: posture %s: %w", p.name, err)
		}
		outcomes[i] = out
	}

	// Determinism: replaying the full posture must reproduce the first
	// run exactly.
	again, err := runFaultPosture(env, full, sched, seed)
	if err != nil {
		return Report{}, err
	}
	fullRun := outcomes[len(outcomes)-1]
	identical := again.throughput == fullRun.throughput &&
		again.stats == fullRun.stats && again.lost == fullRun.lost

	t := Table{
		Title:  "Throughput and availability under the same seeded fault schedule (3 nodes, RF=3, QUORUM reads, RR=50%)",
		Header: []string{"posture", "aops", "vs healthy", "unavail reads", "hinted writes", "transient fails", "retries", "timeouts", "spec reads", "log records lost"},
	}
	t.Rows = append(t.Rows, []string{
		"healthy (no faults)", f0(healthy.throughput), pct(0),
		"0", "0", "0", "0", "0", "0", "0",
	})
	for i, p := range postures {
		out := outcomes[i]
		st := out.stats
		t.Rows = append(t.Rows, []string{
			p.name, f0(out.throughput), pct(out.throughput/healthy.throughput - 1),
			fmt.Sprint(st.UnavailableReads), fmt.Sprint(st.HintsStored),
			fmt.Sprint(st.TransientFailures), fmt.Sprint(st.Retries),
			fmt.Sprint(st.Timeouts), fmt.Sprint(st.SpeculativeReads),
			fmt.Sprint(out.lost),
		})
	}

	none, fullOut := outcomes[0], outcomes[len(outcomes)-1]
	notes := []string{
		"every posture replays the identical schedule: transient failures on node 0 (p=0.15) with a fail-stop outage of node 2 inside the window, a crash-restart of node 0 with 30% of its commit-log tail torn, then a persistent 25x disk straggler on node 1 for the rest of the run",
		"shape under test: retries turn would-be unavailable QUORUM reads into served ones, and timeouts + speculative reads stop the persistent straggler from pacing the whole cluster",
		fmt.Sprintf("full stack vs no resilience: throughput %s vs %s aops, unavailable QUORUM reads %d vs %d",
			f0(fullOut.throughput), f0(none.throughput), fullOut.stats.UnavailableReads, none.stats.UnavailableReads),
		fmt.Sprintf("determinism: two full-stack runs at the same seed identical = %v", identical),
	}
	if fullOut.throughput <= none.throughput {
		notes = append(notes, "WARNING: full stack did not beat the unprotected baseline — resilience regression")
	}
	return Report{
		ID:     "faultinjection",
		Title:  "Fault injection: what the resilient coordinator buys under adversity",
		Tables: []Table{t},
		Notes:  notes,
	}, nil
}
