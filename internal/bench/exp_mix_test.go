package bench

import (
	"strings"
	"testing"

	"rafiki/internal/core"
)

// TestWorkloadMixPrefersLeveledAsScansRise is the tentpole's tuning
// acceptance: trained over a read-ratio x scan-ratio grid, the
// surrogate+GA must discover — with no compaction-specific code
// anywhere in the pipeline — that leveled compaction wins once range
// scans enter a write-heavy mix, because scans pay per overlapping
// SSTable and size-tiered accumulates overlap. The full-size form of
// the same gate is `cmd/experiments -workload-mix` (see
// EXPERIMENTS.md for its measured flip at 20% scans); this test runs
// it at unit scale, with the grid and sweep cut to the write-heavy
// corner the claim is about.
func TestWorkloadMixPrefersLeveledAsScansRise(t *testing.T) {
	if testing.Short() {
		t.Skip("workload-mix pipeline test is slow")
	}
	if raceEnabled {
		t.Skip("the discovery gate needs more ops per sample than the race budget allows")
	}
	opts := tinyPipelineOptions()
	opts.Collect.Workloads = []core.Workload{
		{ReadRatio: 0.1, ScanRatio: 0},
		{ReadRatio: 0.1, ScanRatio: 0.2},
		{ReadRatio: 0.1, ScanRatio: 0.4},
		{ReadRatio: 0.9, ScanRatio: 0},
		{ReadRatio: 0.9, ScanRatio: 0.2},
		{ReadRatio: 0.9, ScanRatio: 0.4},
	}
	p, err := NewCassandraPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := workloadMixReport(p, []float64{0, 0.2, 0.4})
	if err != nil {
		t.Fatalf("workload-mix gate failed: %v\n%s", err, rep.Render())
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	// The gate inside workloadMixReport already asserts the discovery
	// (Leveled at the top of the sweep, widening surrogate edge); spot
	// check the rendering carries the claim for EXPERIMENTS.md.
	if !strings.Contains(rep.Render(), "Leveled") {
		t.Error("report never mentions the discovered Leveled preference")
	}
}

// TestMixCollectionGrid pins the experiment's training grid: the full
// cross product of read ratios and scan ratios, every point valid,
// with both axes actually varying (a degenerate grid could never teach
// the surrogate the scan axis).
func TestMixCollectionGrid(t *testing.T) {
	grid := MixCollectionGrid()
	if len(grid) != 12 {
		t.Fatalf("grid size %d, want 12", len(grid))
	}
	rrs, scans := map[float64]bool{}, map[float64]bool{}
	for _, w := range grid {
		if err := w.Validate(); err != nil {
			t.Errorf("grid point %v invalid: %v", w, err)
		}
		rrs[w.ReadRatio] = true
		scans[w.ScanRatio] = true
	}
	if len(rrs) < 3 || len(scans) < 4 {
		t.Errorf("grid spans %d read ratios x %d scan ratios, want 3 x 4", len(rrs), len(scans))
	}
}
