package bench

import (
	"fmt"
	"math/rand"

	"rafiki/internal/cluster"
	"rafiki/internal/config"
)

// Ring experiment: drive token rings of increasing size through an
// elastic join and a decommission under QUORUM load, and measure what
// the rebalance costs — how much of the token circle moved (the
// minimal-movement property), how much state streamed, and whether the
// serving path stayed available while ranges were mid-flight.

// streamCellBytes is the wire-size estimate for one streamed key
// state: 8-byte key, 8-byte version, 1-byte tombstone flag.
const streamCellBytes = 17

// ringPhase measures one topology change under load.
type ringPhase struct {
	moved      float64 // token-circle fraction scheduled to move
	serveOps   int     // foreground ops issued while ranges were pending
	drainPumps int     // idle pump steps needed after the load window
	window     float64 // virtual seconds from change to quiescence
	streams    uint64  // completed streams
	severed    uint64
	cells      uint64 // key states streamed (catch-up + delta)
	forwarded  uint64 // live writes forwarded to catching-up owners
	unavail    uint64 // unavailable reads+writes during the window
}

// ringRun is one ring scale's full measurement.
type ringRun struct {
	nodes       int
	join, leave ringPhase
	readable    bool // every acked write readable at QUORUM at the end
}

// runRingScale builds an n-node RF=3 ring, drives it through a join
// and a decommission under mixed load, and verifies every acked write
// is still readable at QUORUM once the dust settles.
func runRingScale(env Env, nodes int, seed int64) (ringRun, error) {
	c, err := cluster.New(cluster.Options{
		Nodes:             nodes,
		ReplicationFactor: 3,
		Space:             config.Cassandra(),
		Seed:              env.Seed ^ seed,
		EpochOps:          128,
		NetBaseLatency:    1e-7,
		NetJitter:         5e-8,
	})
	if err != nil {
		return ringRun{}, err
	}
	c.Preload(env.PreloadVersions)
	if err := c.SetReadConsistency(cluster.ConsistencyQuorum); err != nil {
		return ringRun{}, err
	}
	if err := c.SetWriteConsistency(cluster.ConsistencyQuorum); err != nil {
		return ringRun{}, err
	}

	rng := rand.New(rand.NewSource(seed*2862933555777941757 + 3037000493))
	keys := uint64(c.KeySpace())
	acked := make(map[uint64]int64)
	serve := func() {
		key := uint64(rng.Intn(int(keys)))
		if rng.Float64() < 0.5 {
			if res := c.WriteOp(key); res.OK {
				acked[key] = res.Version
			}
		} else {
			c.ReadOp(key)
		}
	}

	// Warm the versioned state so streams have something to move.
	warm := env.SampleOps / 50
	if warm < 1000 {
		warm = 1000
	}
	for i := 0; i < warm; i++ {
		serve()
	}

	phaseOps := env.SampleOps / 25
	if phaseOps < 2000 {
		phaseOps = 2000
	}
	phase := func(change func() error) (ringPhase, error) {
		pre := c.Stats()
		preMoved := c.MovedTokenFraction()
		start := c.Clock()
		if err := change(); err != nil {
			return ringPhase{}, err
		}
		var ph ringPhase
		ph.moved = c.MovedTokenFraction() - preMoved
		// Serve through the rebalance: every op pumps one stream step,
		// so this is the contended regime the pending-range protocol
		// exists for.
		for ph.serveOps < phaseOps && c.PendingRanges() > 0 {
			serve()
			ph.serveOps++
		}
		// Whatever the load window did not finish drains idle.
		ph.drainPumps = c.DrainRebalance(1_000_000)
		if n := c.PendingRanges(); n != 0 {
			return ringPhase{}, fmt.Errorf("rebalance did not drain: %d ranges pending", n)
		}
		ph.window = c.Clock() - start
		post := c.Stats()
		ph.streams = post.StreamsCompleted - pre.StreamsCompleted
		ph.severed = post.StreamsSevered - pre.StreamsSevered
		ph.cells = post.StreamedCells - pre.StreamedCells
		ph.forwarded = post.ForwardedWrites - pre.ForwardedWrites
		ph.unavail = post.UnavailableReads + post.UnavailableWrites -
			pre.UnavailableReads - pre.UnavailableWrites
		return ph, nil
	}

	run := ringRun{nodes: nodes}
	if run.join, err = phase(func() error { _, aerr := c.AddNode(); return aerr }); err != nil {
		return ringRun{}, fmt.Errorf("join: %w", err)
	}
	if run.leave, err = phase(func() error { return c.DecommissionNode(1) }); err != nil {
		return ringRun{}, fmt.Errorf("leave: %w", err)
	}

	// The availability contract: every acked write is readable at
	// QUORUM at (at least) its acked version after both rebalances.
	run.readable = true
	for key, ver := range acked {
		res := c.ReadOp(key)
		if !res.OK || res.Version < ver {
			run.readable = false
			break
		}
	}
	return run, nil
}

// Ring is the elastic-topology experiment: 16 to 64 node rings each
// survive a join and a decommission under QUORUM load. It fails (for
// `-ring` gating) if any acked write becomes unreadable or a rebalance
// fails to drain.
func Ring(env Env) (Report, error) {
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	const seed = 190_000
	scales := []int{16, 32, 64}

	t := Table{
		Title: "Elastic rebalance under QUORUM load (RF=3, join then decommission per scale)",
		Header: []string{"nodes", "event", "moved", "streams", "severed", "cells", "~KiB",
			"forwarded", "unavail ops", "serve ops", "drain pumps", "window (vms)"},
	}
	var runs []ringRun
	for _, n := range scales {
		r, err := runRingScale(env, n, seed+int64(n))
		if err != nil {
			return Report{}, fmt.Errorf("bench: ring %d nodes: %w", n, err)
		}
		runs = append(runs, r)
		for _, ev := range []struct {
			name string
			ph   ringPhase
		}{{"join", r.join}, {"leave", r.leave}} {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(r.nodes), ev.name, pct(ev.ph.moved),
				fmt.Sprint(ev.ph.streams), fmt.Sprint(ev.ph.severed),
				fmt.Sprint(ev.ph.cells), f1(float64(ev.ph.cells) * streamCellBytes / 1024),
				fmt.Sprint(ev.ph.forwarded), fmt.Sprint(ev.ph.unavail),
				fmt.Sprint(ev.ph.serveOps), fmt.Sprint(ev.ph.drainPumps),
				f2(ev.ph.window * 1000),
			})
		}
	}

	// Determinism: the smallest scale replayed at the same seed must
	// reproduce bit for bit.
	again, err := runRingScale(env, scales[0], seed+int64(scales[0]))
	if err != nil {
		return Report{}, err
	}
	identical := again == runs[0]

	notes := []string{
		"moved is the token-circle fraction scheduled to change owners: consistent hashing keeps it near RF/nodes per event (minimal movement), so it shrinks as the ring grows",
		"every stream leg — open, chunk, delta handoff — crosses the simulated network and competes with foreground load; one pump step runs per serving op",
		fmt.Sprintf("~KiB estimates stream volume at %d bytes per key state (8B key + 8B version + tombstone flag)", streamCellBytes),
		fmt.Sprintf("determinism: replaying the %d-node scale at the same seed identical = %v", scales[0], identical),
	}
	report := Report{
		ID:     "ring",
		Title:  "Token-ring elasticity: join and decommission under load",
		Tables: []Table{t},
		Notes:  notes,
	}
	for _, r := range runs {
		if !r.readable {
			return report, fmt.Errorf("bench: ring %d nodes: an acked write became unreadable at QUORUM after rebalance", r.nodes)
		}
	}
	if !identical {
		return report, fmt.Errorf("bench: ring experiment is nondeterministic at %d nodes", scales[0])
	}
	return report, nil
}
