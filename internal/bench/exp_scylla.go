package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/core"
)

// Table4 regenerates the ScyllaDB tuning comparison: Rafiki's
// recommended configuration vs a measured grid search, both scored as
// gains over ScyllaDB's default (auto-tuned) configuration, at 70% and
// 100% reads (Section 4.10).
func Table4(p *Pipeline) (Report, error) {
	if p.Space.Name != "scylladb" {
		return Report{}, fmt.Errorf("bench: Table4 needs a ScyllaDB pipeline, got %q", p.Space.Name)
	}
	workloads := []float64{0.7, 1.0}
	grid, err := scyllaGrid(p.Space)
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "ScyllaDB: Rafiki vs measured grid search (gains over default)",
		Header: []string{"workload", "default", "rafiki", "rafiki gain", "grid best", "grid gain"},
	}
	seed := p.Opts.Env.Seed + 120_000
	for _, rr := range workloads {
		seed += 500
		def, err := p.MeasureDefault(core.RR(rr), seed)
		if err != nil {
			return Report{}, err
		}
		_, raf, err := p.RecommendAndMeasure(core.RR(rr), seed+1)
		if err != nil {
			return Report{}, err
		}
		gr, err := GridSearch(p.Collector, core.RR(rr), grid, seed+2)
		if err != nil {
			return Report{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("R=%.0f%%", rr*100),
			f0(def), f0(raf), pct(raf/def - 1),
			f0(gr.BestThroughput), pct(gr.BestThroughput/def - 1),
		})
	}
	return Report{
		ID:     "table4",
		Title:  "ScyllaDB performance tuning",
		Tables: []Table{t},
		Notes: []string{
			"paper: WL1 (R=70%): Rafiki +12.29% vs grid +21.8%; WL2 (R=100%): Rafiki +9% vs grid +4.57%",
			"shape under test: ScyllaDB's internal auto-tuner leaves much less headroom than Cassandra's defaults (~9-12% vs ~41%), and its throughput variance makes tuning noisier",
		},
	}, nil
}

// scyllaGrid builds an 80-point grid over ScyllaDB's key parameters.
func scyllaGrid(space *config.Space) ([]config.Config, error) {
	keys, err := space.KeyParams()
	if err != nil {
		return nil, err
	}
	// Per-parameter levels sized to multiply to 80: 2 x 2 x 5 x 2 x 2.
	levels := [][]float64{
		{config.CompactionSizeTiered, config.CompactionLeveled}, // compaction_strategy
		{32, 64},                     // concurrent_writes
		{0.05, 0.11, 0.2, 0.35, 0.5}, // memtable_cleanup_threshold
		{16, 128},                    // compaction_throughput_mb_per_sec
		{1024, 4096},                 // memtable_heap_space_in_mb
	}
	if len(levels) != len(keys) {
		return nil, fmt.Errorf("bench: scylla grid levels mismatch: %d vs %d key params", len(levels), len(keys))
	}
	var out []config.Config
	var walk func(i int, cfg config.Config)
	walk = func(i int, cfg config.Config) {
		if i == len(keys) {
			out = append(out, cfg.Clone())
			return
		}
		for _, v := range levels[i] {
			cfg[keys[i].Name] = v
			walk(i+1, cfg)
		}
		delete(cfg, keys[i].Name)
	}
	walk(0, config.Config{})
	return out, nil
}
