package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/stats"
)

// MixCollectionGrid is the workload-characterization grid behind the
// workload-mix experiment: the paper's read-ratio axis crossed with the
// scan-ratio axis the CRUD+scan suite adds. Training over the cross
// product is what lets the surrogate learn how configuration value
// shifts with workload shape — nothing about compaction strategy is
// special-cased anywhere downstream.
func MixCollectionGrid() []core.Workload {
	var grid []core.Workload
	for _, rr := range []float64{0.1, 0.5, 0.9} {
		for _, scan := range []float64{0, 0.1, 0.2, 0.4} {
			grid = append(grid, core.Workload{ReadRatio: rr, ScanRatio: scan})
		}
	}
	return grid
}

// WorkloadMix demonstrates shape-aware tuning end to end: it trains a
// pipeline over MixCollectionGrid and then sweeps the scan share at a
// write-heavy read ratio, reporting the tuner's recommended
// configuration per shape. The headline claim is that the recommended
// compaction strategy flips toward Leveled as range scans enter the
// mix — size-tiered's write advantage loses to the scan cost of
// consulting many overlapping tables — and that the tuner discovers
// this from collected samples alone.
//
// The experiment fails (returns an error) if the discovery does not
// materialize: the surrogate must prefer Leveled at the top of the
// scan sweep, with its leveled-over-size-tiered margin wider than at
// the bottom.
func WorkloadMix(opts PipelineOptions) (Report, error) {
	opts.Collect.Workloads = MixCollectionGrid()
	p, err := NewCassandraPipeline(opts)
	if err != nil {
		return Report{}, err
	}
	return workloadMixReport(p, []float64{0, 0.1, 0.2, 0.3, 0.4})
}

// workloadMixReport runs the scan-ratio sweep against an
// already-trained pipeline (split out so tests can drive it with a
// small one).
func workloadMixReport(p *Pipeline, scanRatios []float64) (Report, error) {
	// Write-heavy point operations: the one regime where size-tiered
	// compaction has a real niche, so a flip with rising scan share is
	// a genuine regime change rather than "leveled always wins".
	const rr = 0.1
	comp := p.Space.MustParam(config.ParamCompactionStrategy)

	t := Table{
		Title: fmt.Sprintf("Tuned configuration vs scan share (RR=%.0f%% of point ops)", rr*100),
		Header: []string{
			"scan ratio", "tuned compaction", "default", "tuned", "gain", "surrogate leveled edge",
		},
	}
	var edges, gains []float64
	var topStrategy string
	seed := p.Opts.Env.Seed + 130_000
	for _, scan := range scanRatios {
		w := core.Workload{ReadRatio: rr, ScanRatio: scan}
		seed += 1000
		rec, tuned, err := p.RecommendAndMeasure(w, seed)
		if err != nil {
			return Report{}, err
		}
		def, err := p.MeasureDefault(w, seed+1)
		if err != nil {
			return Report{}, err
		}
		topStrategy = comp.ValueName(rec.Config[config.ParamCompactionStrategy])

		// The surrogate's own view of the compaction choice: predicted
		// throughput with the strategy forced each way, everything else
		// held at the tuned values. A positive edge means the model
		// believes Leveled wins this shape.
		st := rec.Config.Clone()
		st[config.ParamCompactionStrategy] = config.CompactionSizeTiered
		lcs := rec.Config.Clone()
		lcs[config.ParamCompactionStrategy] = config.CompactionLeveled
		predST, err := p.Surrogate.Predict(w, st)
		if err != nil {
			return Report{}, err
		}
		predLCS, err := p.Surrogate.Predict(w, lcs)
		if err != nil {
			return Report{}, err
		}
		edge := (predLCS - predST) / predST
		edges = append(edges, edge)
		gain := (tuned - def) / def
		gains = append(gains, gain)

		t.Rows = append(t.Rows, []string{
			pct(scan), topStrategy, f0(def), f0(tuned), pct(gain), pct(edge),
		})
	}

	rep := Report{
		ID:     "workloadmix",
		Title:  "Workload-shape-aware tuning: compaction strategy vs scan share",
		Tables: []Table{t},
		Notes: []string{
			fmt.Sprintf("measured: mean gain over default across the sweep %s", pct(stats.Mean(gains))),
			fmt.Sprintf("surrogate leveled edge grows %s -> %s across the scan sweep; tuned compaction at the top: %s",
				pct(edges[0]), pct(edges[len(edges)-1]), topStrategy),
			"the scan axis joins RR in the characterization vector; the preference is discovered from collected samples, not hard-coded",
		},
	}
	if topStrategy != "Leveled" {
		return rep, fmt.Errorf("bench: workload mix: tuner recommended %s at scan ratio %v, want Leveled", topStrategy, scanRatios[len(scanRatios)-1])
	}
	if edges[len(edges)-1] <= edges[0] {
		return rep, fmt.Errorf("bench: workload mix: surrogate leveled edge did not grow with scan ratio (%v -> %v)",
			edges[0], edges[len(edges)-1])
	}
	return rep, nil
}
