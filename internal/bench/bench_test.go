package bench

import (
	"strings"
	"testing"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
)

// tinyEnv keeps tests fast: short samples, tiny ensembles.
func tinyEnv() Env {
	e := DefaultEnv()
	e.SampleOps = 20_000
	if raceEnabled {
		e.SampleOps = 4_000
	}
	return e
}

func tinyPipelineOptions() PipelineOptions {
	opts := DefaultPipelineOptions()
	opts.Env = tinyEnv()
	opts.Collect = core.CollectOptions{
		Workloads: core.RRs(0, 0.1, 0.3, 0.5, 0.7, 0.9, 1),
		Configs:   10,
		Seed:      3,
	}
	opts.Model = nn.ModelConfig{
		Hidden:        []int{10, 4},
		EnsembleSize:  4,
		PruneFraction: 0.25,
		Trainer:       nn.TrainerBR,
		BR:            nn.BROptions{Epochs: 30, MuInit: 0.005, MuInc: 10, MuDec: 0.1, MuMax: 1e10, MinGrad: 1e-7},
		Seed:          4,
	}
	gaOpts := ga.DefaultOptions()
	gaOpts.Population = 24
	gaOpts.Generations = 20
	gaOpts.Seed = 5
	opts.GA = gaOpts
	if raceEnabled {
		// Same workload/config counts (tests assert dataset shape);
		// cheaper per-sample, training, and search budgets.
		opts.Model.EnsembleSize = 3
		opts.Model.BR.Epochs = 15
		opts.GA.Population = 16
		opts.GA.Generations = 10
	}
	return opts
}

var sharedPipeline *Pipeline

func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if sharedPipeline != nil {
		return sharedPipeline
	}
	p, err := NewCassandraPipeline(tinyPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	sharedPipeline = p
	return p
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
	}
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestReportRender(t *testing.T) {
	r := Report{
		ID:    "x",
		Title: "demo report",
		Tables: []Table{
			{Header: []string{"h"}, Rows: [][]string{{"v"}}},
		},
		Notes: []string{"a note"},
	}
	out := r.Render()
	for _, want := range []string{"== x: demo report ==", "note: a note", "h", "v"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEnvValidate(t *testing.T) {
	if err := DefaultEnv().Validate(); err != nil {
		t.Errorf("default env invalid: %v", err)
	}
	bad := DefaultEnv()
	bad.SampleOps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ops should error")
	}
	bad = DefaultEnv()
	bad.KRDFraction = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative KRD fraction should error")
	}
	bad = DefaultEnv()
	bad.PreloadVersions = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero preload should error")
	}
}

func TestCassandraSampleDeterminism(t *testing.T) {
	env := tinyEnv()
	a, err := env.CassandraSample(core.RR(0.5), config.Config{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.CassandraSample(core.RR(0.5), config.Config{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced %v vs %v", a, b)
	}
	c, err := env.CassandraSample(core.RR(0.5), config.Config{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds should perturb the sample")
	}
}

func TestGridConfigsCount(t *testing.T) {
	grid := GridConfigs()
	if len(grid) != 80 {
		t.Fatalf("grid has %d configs, want 80 (Section 4.8)", len(grid))
	}
	space := config.Cassandra()
	for i, cfg := range grid {
		if err := space.Validate(cfg); err != nil {
			t.Errorf("grid config %d invalid: %v", i, err)
		}
	}
}

func TestScyllaGridCount(t *testing.T) {
	space := config.ScyllaDB()
	grid, err := scyllaGrid(space)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 80 {
		t.Fatalf("scylla grid has %d configs, want 80", len(grid))
	}
	for i, cfg := range grid {
		if err := space.Validate(cfg); err != nil {
			t.Errorf("grid config %d invalid: %v", i, err)
		}
	}
}

// fakeCollector is an analytic collector for search tests.
func fakeCollector() core.Collector {
	space := config.Cassandra()
	return core.CollectorFunc(func(_ core.Workload, cfg config.Config, seed int64) (float64, error) {
		cw, err := space.Value(cfg, config.ParamConcurrentWrites)
		if err != nil {
			return 0, err
		}
		mt, err := space.Value(cfg, config.ParamMemtableCleanup)
		if err != nil {
			return 0, err
		}
		return 100000 - (cw-64)*(cw-64) - 100000*(mt-0.3)*(mt-0.3), nil
	})
}

func TestGridSearch(t *testing.T) {
	res, err := GridSearch(fakeCollector(), core.RR(0.5), GridConfigs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 80 {
		t.Errorf("samples = %d", res.Samples)
	}
	if res.Best[config.ParamConcurrentWrites] != 64 {
		t.Errorf("grid best CW = %v, want 64", res.Best[config.ParamConcurrentWrites])
	}
	if _, err := GridSearch(fakeCollector(), core.RR(0.5), nil, 1); err == nil {
		t.Error("empty grid should error")
	}
}

func TestGreedySearch(t *testing.T) {
	res, err := GreedySearch(fakeCollector(), config.Cassandra(), core.RR(0.5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Error("greedy used no samples")
	}
	if res.BestThroughput < 99000 {
		t.Errorf("greedy best %v too low on separable function", res.BestThroughput)
	}
}

func TestRandomSearch(t *testing.T) {
	res, err := RandomSearch(fakeCollector(), config.Cassandra(), core.RR(0.5), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 30 {
		t.Errorf("samples = %d", res.Samples)
	}
	if res.Best == nil {
		t.Error("no best found")
	}
	if _, err := RandomSearch(fakeCollector(), config.Cassandra(), core.RR(0.5), 0, 3); err == nil {
		t.Error("n=0 should error")
	}
}

func TestFigure3(t *testing.T) {
	rep, err := Figure3(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "figure3" || len(rep.Tables) != 2 {
		t.Errorf("report shape: %+v", rep.ID)
	}
	out := rep.Render()
	if !strings.Contains(out, "read-heavy fraction") {
		t.Errorf("missing stats:\n%s", out)
	}
}

func TestPipelineAndFigure4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	if got := len(p.Dataset.Samples); got != 70 {
		t.Fatalf("dataset size = %d, want 70", got)
	}
	rep, err := Figure4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 7 {
		t.Errorf("figure4 rows = %d", len(rep.Tables[0].Rows))
	}
	if !strings.Contains(rep.Render(), "rafiki") {
		t.Error("render missing rafiki column")
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := Table1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Errorf("table1 rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestTable2AndHistogramsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := Table2(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Errorf("table2 rows = %d", len(rep.Tables[0].Rows))
	}
	h8, err := Figure8(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h8.Render(), "mean absolute error") {
		t.Error("figure8 missing summary")
	}
}

func TestFigure10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("variance experiment is slow")
	}
	rep, err := Figure10(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 || len(rep.Tables[0].Rows) != 2 {
		t.Errorf("figure10 shape wrong")
	}
}

func TestTable4RequiresScyllaPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	if _, err := Table4(p); err == nil {
		t.Error("Table4 on a Cassandra pipeline should error")
	}
}

func TestLatencyCollector(t *testing.T) {
	env := tinyEnv()
	inv, err := env.CassandraLatencySample(core.RR(0.5), config.Config{}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if inv <= 0 {
		t.Fatalf("inverse p99 = %v", inv)
	}
	// Little's law sanity: p99 latency must be at least
	// clients/throughput of the mean epoch.
	tput, err := env.CassandraSample(core.RR(0.5), config.Config{}, 31)
	if err != nil {
		t.Fatal(err)
	}
	p99 := 1 / inv
	meanLatency := 64 / tput
	if p99 < meanLatency*0.8 {
		t.Errorf("p99 %.6fs below mean latency %.6fs", p99, meanLatency)
	}
}

func TestAblationModelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := AblationModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Errorf("ablation-model rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestAblationSurrogateSearchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := AblationSurrogateSearch(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Errorf("ablation-surrogate-search rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestCrossWorkloadPenaltySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := CrossWorkloadPenalty(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Errorf("crossworkload rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestDynamicTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := DynamicTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 3 {
		t.Errorf("dynamic rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestFigure5And6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiments are slow")
	}
	env := tinyEnv()
	rep5, err := Figure5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep5.Tables[0].Rows) == 0 {
		t.Error("figure5 has no ranking rows")
	}
	rep6, err := Figure6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep6.Tables) != 2 {
		t.Error("figure6 should render two tables")
	}
}

func TestFigure7And9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep7, err := Figure7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep7.Tables[0].Rows) != 5 {
		t.Errorf("figure7 rows = %d", len(rep7.Tables[0].Rows))
	}
	rep9, err := Figure9(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep9.Render(), "mean absolute error") {
		t.Error("figure9 missing summary")
	}
}

func TestSearchSpeedAndTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := SearchSpeed(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Render(), "speedup") {
		t.Error("searchspeed missing speedup row")
	}
	rep3, err := Table3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Tables[0].Rows) != 3 {
		t.Errorf("table3 rows = %d", len(rep3.Tables[0].Rows))
	}
}

func TestAblationSearchAndTrainerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke test is slow")
	}
	p := testPipeline(t)
	rep, err := AblationSearch(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Errorf("ablation-search rows = %d", len(rep.Tables[0].Rows))
	}
	rep2, err := AblationTrainer(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Tables[0].Rows) != 4 {
		t.Errorf("ablation-trainer rows = %d", len(rep2.Tables[0].Rows))
	}
}

func TestScyllaPipelineAndTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scylla pipeline smoke test is slow")
	}
	opts := tinyPipelineOptions()
	opts.Collect.Workloads = core.RRs(0.3, 0.7, 1)
	opts.Collect.Configs = 8
	sp, err := NewScyllaPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Table4(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 2 {
		t.Errorf("table4 rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestClusterSampleSmoke(t *testing.T) {
	env := tinyEnv()
	tput, err := env.ClusterSample(2, 2, core.RR(0.5), config.Config{}, 71)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Error("no cluster throughput")
	}
}

func TestScyllaSampleSmoke(t *testing.T) {
	env := tinyEnv()
	tput, err := env.ScyllaSample(core.RR(0.5), config.Config{}, 72)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Error("no scylla throughput")
	}
}
