package bench

import (
	"rafiki/internal/obs"
	"rafiki/internal/par"
)

// runTrials fans n independent experiment trials across the
// environment's workers. Each trial gets its own obs stage (merged back
// in trial order) and writes its result into an index-addressed slot,
// so reports and telemetry are identical for any worker count. Results
// come back in trial order.
func runTrials[T any](p *Pipeline, name string, n int, trial func(trial int, reg *obs.Registry) (T, error)) ([]T, error) {
	root := p.Opts.Model.Obs
	out := make([]T, n)
	stages := make([]*obs.Registry, n)
	err := par.Do(n, par.Options{Workers: p.Opts.Env.Workers, Name: "bench." + name, Obs: root}, func(i int) error {
		stage := root.Stage()
		stages[i] = stage
		v, err := trial(i, stage)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range stages {
		root.Merge(s)
	}
	return out, nil
}
