package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rafiki/internal/core"
	"rafiki/internal/obs"
)

// pipelineFingerprint builds a small end-to-end pipeline (collect ->
// train -> GA search) with the given worker bound and returns the
// serialized surrogate model, the GA recommendation, and the obs
// snapshot JSON with the par.* occupancy gauges stripped (the one
// metric that reports the configured worker count by design).
func pipelineFingerprint(t *testing.T, workers int) ([]byte, core.OptimizeResult, []byte) {
	t.Helper()
	opts := tinyPipelineOptions()
	opts.Env.SampleOps = 5_000
	opts.Env.Workers = workers
	opts.Env.Obs = obs.NewRegistry()
	opts.Collect.Workloads = []float64{0.1, 0.5, 0.9}
	opts.Collect.Configs = 6
	opts.Model.EnsembleSize = 3
	opts.Model.BR.Epochs = 10
	opts.GA.Population = 16
	opts.GA.Generations = 8

	p, err := NewCassandraPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	model, err := json.Marshal(p.Surrogate.Model)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Recommend(0.9)
	if err != nil {
		t.Fatal(err)
	}
	snap := opts.Env.Obs.Snapshot()
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "par.") {
			delete(snap.Gauges, name)
		}
	}
	blob, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return model, rec, blob
}

// TestCollectorsStageTelemetry: every environment collector implements
// core.ObsCollector, and sampling through a stage registry yields the
// same value as the plain path while routing engine telemetry into the
// stage (merged back without loss).
func TestCollectorsStageTelemetry(t *testing.T) {
	env := tinyEnv()
	for _, tc := range []struct {
		name string
		c    core.Collector
	}{
		{"cassandra", env.CassandraCollector()},
		{"latency", env.CassandraLatencyCollector()},
		{"scylla", env.ScyllaCollector()},
	} {
		oc, ok := tc.c.(core.ObsCollector)
		if !ok {
			t.Fatalf("%s collector does not implement core.ObsCollector", tc.name)
		}
		plain, err := tc.c.Sample(0.5, nil, 31)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		stage := reg.Stage()
		staged, err := oc.SampleObs(0.5, nil, 31, stage)
		if err != nil {
			t.Fatal(err)
		}
		if plain != staged {
			t.Errorf("%s: staged sample %v != plain %v", tc.name, staged, plain)
		}
		reg.Merge(stage)
		if len(reg.Snapshot().Counters) == 0 {
			t.Errorf("%s: staged sample recorded no engine counters", tc.name)
		}
	}
}

// TestPipelineDeterministicAcrossWorkers is the end-to-end parallelism
// contract: collection, ensemble training, and the surrogate-backed GA
// must produce byte-identical models, identical recommendations, and
// byte-identical telemetry whether the pipeline runs serially or on
// eight workers.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline determinism test is slow")
	}
	refModel, refRec, refSnap := pipelineFingerprint(t, 1)
	if len(refSnap) == 0 || !bytes.Contains(refSnap, []byte("nn.batch_predictions")) {
		t.Fatalf("snapshot missing batch-prediction counter:\n%s", refSnap)
	}
	for _, workers := range []int{4, 8} {
		model, rec, snap := pipelineFingerprint(t, workers)
		if !bytes.Equal(refModel, model) {
			t.Errorf("workers=%d: trained model differs from serial run", workers)
		}
		if !reflect.DeepEqual(refRec, rec) {
			t.Errorf("workers=%d: GA recommendation differs from serial run:\n%+v\nvs\n%+v", workers, rec, refRec)
		}
		if !bytes.Equal(refSnap, snap) {
			t.Errorf("workers=%d: obs snapshot differs from serial run", workers)
		}
	}
}
