package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/obs"
)

// pipelineFingerprint builds a small end-to-end pipeline (collect ->
// train -> GA search) with the given worker bound and returns the
// serialized surrogate model, the GA recommendation, and the obs
// snapshot JSON with the par.* occupancy gauges stripped (the one
// metric that reports the configured worker count by design).
func pipelineFingerprint(t *testing.T, workers int) ([]byte, core.OptimizeResult, []byte) {
	t.Helper()
	opts := tinyPipelineOptions()
	opts.Env.SampleOps = 5_000
	opts.Env.Workers = workers
	opts.Env.Obs = obs.NewRegistry()
	opts.Collect.Workloads = core.RRs(0.1, 0.5, 0.9)
	opts.Collect.Configs = 6
	opts.Model.EnsembleSize = 3
	opts.Model.BR.Epochs = 10
	opts.GA.Population = 16
	opts.GA.Generations = 8

	p, err := NewCassandraPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	model, err := json.Marshal(p.Surrogate.Model)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Recommend(core.RR(0.9))
	if err != nil {
		t.Fatal(err)
	}
	snap := opts.Env.Obs.Snapshot()
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "par.") {
			delete(snap.Gauges, name)
		}
	}
	blob, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return model, rec, blob
}

// TestCollectorsStageTelemetry: every environment collector implements
// core.ObsCollector, and sampling through a stage registry yields the
// same value as the plain path while routing engine telemetry into the
// stage (merged back without loss).
func TestCollectorsStageTelemetry(t *testing.T) {
	env := tinyEnv()
	for _, tc := range []struct {
		name string
		c    core.Collector
	}{
		{"cassandra", env.CassandraCollector()},
		{"latency", env.CassandraLatencyCollector()},
		{"scylla", env.ScyllaCollector()},
	} {
		oc, ok := tc.c.(core.ObsCollector)
		if !ok {
			t.Fatalf("%s collector does not implement core.ObsCollector", tc.name)
		}
		plain, err := tc.c.Sample(core.RR(0.5), nil, 31)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		stage := reg.Stage()
		staged, err := oc.SampleObs(core.RR(0.5), nil, 31, stage)
		if err != nil {
			t.Fatal(err)
		}
		if plain != staged {
			t.Errorf("%s: staged sample %v != plain %v", tc.name, staged, plain)
		}
		reg.Merge(stage)
		if len(reg.Snapshot().Counters) == 0 {
			t.Errorf("%s: staged sample recorded no engine counters", tc.name)
		}
	}
}

// TestMixedOpCollectDeterministicAcrossWorkers pins the parallelism
// contract for the CRUD+scan suite specifically: collection over
// workload shapes that exercise range scans, deletes (via the mix's
// mutation share), and hotspot skew must produce an identical dataset
// and byte-identical engine telemetry at 1, 2, 4, and 8 workers. The
// mixed-op driver touches engine paths (merged iterators, tombstone
// accounting, TTL expiry) the RR-only tests never reach, so worker
// invariance is asserted for them separately.
func TestMixedOpCollectDeterministicAcrossWorkers(t *testing.T) {
	mixed := []core.Workload{
		{ReadRatio: 0.2, ScanRatio: 0.3},
		{ReadRatio: 0.8, ScanRatio: 0.1, Skew: 0.9},
		{ReadRatio: 0.5, Skew: 0.6},
	}
	sampleOps := 5_000
	workerCounts := []int{2, 4, 8}
	if raceEnabled {
		// The race build runs everything twice (-count=2) on the
		// shared 600 s package budget; shrink the samples, keep the
		// invariance claim.
		sampleOps = 1_500
		workerCounts = []int{4}
	}
	collect := func(workers int) (core.Dataset, []byte) {
		env := tinyEnv()
		env.SampleOps = sampleOps
		env.Obs = obs.NewRegistry()
		ds, err := core.Collect(env.CassandraCollector(), config.Cassandra(), core.CollectOptions{
			Workloads: mixed,
			Configs:   4,
			Seed:      17,
			Workers:   workers,
			Obs:       env.Obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := env.Obs.Snapshot()
		for name := range snap.Gauges {
			if strings.HasPrefix(name, "par.") {
				delete(snap.Gauges, name)
			}
		}
		blob, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return ds, blob
	}
	refDS, refSnap := collect(1)
	if !bytes.Contains(refSnap, []byte("nosql.scans")) {
		t.Fatalf("mixed-op collection recorded no engine scans:\n%s", refSnap)
	}
	if !bytes.Contains(refSnap, []byte("nosql.deletes")) {
		t.Fatal("mixed-op collection recorded no engine deletes")
	}
	for _, workers := range workerCounts {
		ds, snap := collect(workers)
		if !reflect.DeepEqual(refDS, ds) {
			t.Errorf("workers=%d: mixed-op dataset differs from serial run", workers)
		}
		if !bytes.Equal(refSnap, snap) {
			t.Errorf("workers=%d: mixed-op obs snapshot differs from serial run", workers)
		}
	}
}

// TestPipelineDeterministicAcrossWorkers is the end-to-end parallelism
// contract: collection, ensemble training, and the surrogate-backed GA
// must produce byte-identical models, identical recommendations, and
// byte-identical telemetry whether the pipeline runs serially or on
// eight workers.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline determinism test is slow")
	}
	refModel, refRec, refSnap := pipelineFingerprint(t, 1)
	if len(refSnap) == 0 || !bytes.Contains(refSnap, []byte("nn.batch_predictions")) {
		t.Fatalf("snapshot missing batch-prediction counter:\n%s", refSnap)
	}
	for _, workers := range []int{4, 8} {
		model, rec, snap := pipelineFingerprint(t, workers)
		if !bytes.Equal(refModel, model) {
			t.Errorf("workers=%d: trained model differs from serial run", workers)
		}
		if !reflect.DeepEqual(refRec, rec) {
			t.Errorf("workers=%d: GA recommendation differs from serial run:\n%+v\nvs\n%+v", workers, rec, refRec)
		}
		if !bytes.Equal(refSnap, snap) {
			t.Errorf("workers=%d: obs snapshot differs from serial run", workers)
		}
	}
}
