//go:build race

package bench

// raceEnabled shrinks the smoke-test workloads when the race detector
// is compiled in: its ~10x slowdown would push the full-size suite past
// the per-package test timeout.
const raceEnabled = true
