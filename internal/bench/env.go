package bench

import (
	"fmt"

	"rafiki/internal/cluster"
	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/nosql"
	"rafiki/internal/obs"
	"rafiki/internal/workload"
)

// Env fixes the experimental environment: how long each benchmark
// sample runs, the key-reuse profile, and the base seed. A fresh engine
// backs every sample, matching the paper's container reset between
// data-collection events.
type Env struct {
	// Seed is the base seed; all derived seeds are deterministic.
	Seed int64
	// SampleOps is the number of operations per benchmark sample (the
	// analog of the paper's 5-minute measurement window).
	SampleOps int
	// KRDFraction sets the key-reuse-distance mean as a fraction of the
	// key space; MG-RAST's KRD is large (Section 3.3).
	KRDFraction float64
	// PreloadVersions controls the preloaded dataset's overlap depth.
	PreloadVersions int
	// Obs, when non-nil, receives engine- and cluster-level telemetry
	// from every sample the environment runs. The registry is shared
	// across samples, so counters accumulate over a whole experiment.
	// Under parallel collection each sample writes to its own stage of
	// this registry, merged in sample order, so snapshots stay
	// deterministic (see core.ObsCollector).
	Obs *obs.Registry
	// Workers bounds the parallelism of every pipeline stage driven by
	// this environment — data collection, ensemble training, and batch
	// prediction. <= 0 means one worker per CPU; 1 forces serial
	// execution. Results are identical for any value.
	Workers int
}

// DefaultEnv returns the environment used by the experiment suite.
func DefaultEnv() Env {
	return Env{
		Seed:            1,
		SampleOps:       100_000,
		KRDFraction:     2.0,
		PreloadVersions: 3,
	}
}

// Validate reports sizing errors.
func (e Env) Validate() error {
	if e.SampleOps <= 0 {
		return fmt.Errorf("bench: sample ops must be positive, got %d", e.SampleOps)
	}
	if e.KRDFraction < 0 {
		return fmt.Errorf("bench: negative KRD fraction %v", e.KRDFraction)
	}
	if e.PreloadVersions < 1 {
		return fmt.Errorf("bench: preload versions must be >= 1, got %d", e.PreloadVersions)
	}
	return nil
}

// SpecFor translates a workload characterization into the concrete
// workload.Spec the environment drives: RR-only workloads take the
// paper's original two-op spec (bit-identical to pre-mix experiments),
// while workloads with scan-ratio or skew axes run the full CRUD+scan
// mix — scans at ScanRatio, a fixed 5% delete share of mutations so
// tombstone pressure is always represented, and a hotspot key
// distribution whose hot-traffic weight realizes the skew.
func (e Env) SpecFor(w core.Workload, keySpace int, seed int64) workload.Spec {
	spec := workload.Spec{
		ReadRatio: w.ReadRatio,
		KRDMean:   e.KRDFraction * float64(keySpace),
		Ops:       e.SampleOps,
		Seed:      seed + 101,
	}
	if w.ScanRatio == 0 && w.Skew == 0 {
		return spec
	}
	spec.Mix = workload.MixForShape(w.ReadRatio, w.ScanRatio, 0.05)
	if w.Skew > 0 {
		spec.Distribution = workload.DistHotspot
		spec.HotspotWeight = w.Skew
	}
	return spec
}

// CassandraSample benchmarks one (workload, config) point on a fresh
// Cassandra engine.
func (e Env) CassandraSample(w core.Workload, cfg config.Config, seed int64) (float64, error) {
	eng, err := nosql.New(nosql.Options{
		Space:  config.Cassandra(),
		Config: cfg,
		Seed:   e.Seed ^ seed,
		Obs:    e.Obs,
	})
	if err != nil {
		return 0, err
	}
	eng.Preload(e.PreloadVersions)
	res, err := workload.Run(eng, e.SpecFor(w, eng.KeySpace(), seed))
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

// envCollector adapts an Env sample method to core.ObsCollector: when
// core.Collect fans samples out, each sample runs against a copy of the
// environment whose Obs points at that sample's stage registry, so
// telemetry merges back in sample order instead of interleaving.
type envCollector struct {
	env    Env
	sample func(Env, core.Workload, config.Config, int64) (float64, error)
}

// Sample implements core.Collector.
func (c envCollector) Sample(w core.Workload, cfg config.Config, seed int64) (float64, error) {
	return c.sample(c.env, w, cfg, seed)
}

// SampleObs implements core.ObsCollector.
func (c envCollector) SampleObs(w core.Workload, cfg config.Config, seed int64, reg *obs.Registry) (float64, error) {
	env := c.env
	env.Obs = reg
	return c.sample(env, w, cfg, seed)
}

// CassandraCollector adapts CassandraSample to the middleware.
func (e Env) CassandraCollector() core.Collector {
	return envCollector{env: e, sample: Env.CassandraSample}
}

// CassandraLatencySample benchmarks one point and returns the inverse
// of the p99 epoch latency (1/seconds) — the alternative performance
// metric of Section 3.8, where the DBA tunes for tail latency instead
// of throughput. Higher is better, as the middleware expects.
func (e Env) CassandraLatencySample(w core.Workload, cfg config.Config, seed int64) (float64, error) {
	eng, err := nosql.New(nosql.Options{
		Space:  config.Cassandra(),
		Config: cfg,
		Seed:   e.Seed ^ seed,
		Obs:    e.Obs,
	})
	if err != nil {
		return 0, err
	}
	eng.Preload(e.PreloadVersions)
	if _, err := workload.Run(eng, e.SpecFor(w, eng.KeySpace(), seed)); err != nil {
		return 0, err
	}
	p99 := eng.Metrics().LatencyPercentile(0.99)
	if p99 <= 0 {
		return 0, fmt.Errorf("bench: no latency samples collected")
	}
	return 1 / p99, nil
}

// CassandraLatencyCollector adapts CassandraLatencySample.
func (e Env) CassandraLatencyCollector() core.Collector {
	return envCollector{env: e, sample: Env.CassandraLatencySample}
}

// ScyllaSample benchmarks one point on a fresh ScyllaDB engine.
func (e Env) ScyllaSample(w core.Workload, cfg config.Config, seed int64) (float64, error) {
	eng, err := nosql.NewScylla(nosql.ScyllaOptions{
		Config: cfg,
		Seed:   e.Seed ^ seed,
		Obs:    e.Obs,
	})
	if err != nil {
		return 0, err
	}
	eng.Preload(e.PreloadVersions)
	res, err := workload.Run(eng, e.SpecFor(w, eng.KeySpace(), seed))
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

// ScyllaCollector adapts ScyllaSample to the middleware.
func (e Env) ScyllaCollector() core.Collector {
	return envCollector{env: e, sample: Env.ScyllaSample}
}

// ClusterSample benchmarks one point on a fresh multi-node cluster with
// the given node count and replication factor.
func (e Env) ClusterSample(nodes, rf int, w core.Workload, cfg config.Config, seed int64) (float64, error) {
	c, err := cluster.New(cluster.Options{
		Nodes:             nodes,
		ReplicationFactor: rf,
		Space:             config.Cassandra(),
		Config:            cfg,
		Seed:              e.Seed ^ seed,
		Obs:               e.Obs,
	})
	if err != nil {
		return 0, err
	}
	c.Preload(e.PreloadVersions)
	res, err := workload.Run(c, e.SpecFor(w, c.KeySpace(), seed))
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}
