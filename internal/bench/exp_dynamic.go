package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/forecast"
	"rafiki/internal/nosql"
	"rafiki/internal/workload"
)

// CrossWorkloadPenalty regenerates Section 1's motivating claim: "the
// optimal configuration setting for one type of workload is suboptimal
// for another, and this results in as much as 42.9% degradation". Each
// workload's tuned configuration is measured under the other workload.
func CrossWorkloadPenalty(p *Pipeline) (Report, error) {
	workloads := []float64{0.1, 0.9}
	recs := make(map[float64]core.OptimizeResult, len(workloads))
	for _, rr := range workloads {
		rec, err := p.Recommend(core.RR(rr))
		if err != nil {
			return Report{}, err
		}
		recs[rr] = rec
	}

	t := Table{
		Title:  "Configurations tuned for one workload, measured under another",
		Header: []string{"tuned for", "run at", "throughput", "vs matched config"},
	}
	seed := p.Opts.Env.Seed + 150_000
	var worst float64
	for _, tunedFor := range workloads {
		for _, runAt := range workloads {
			seed++
			tput, err := p.Collector.Sample(core.RR(runAt), recs[tunedFor].Config, seed)
			if err != nil {
				return Report{}, err
			}
			matched, err := p.Collector.Sample(core.RR(runAt), recs[runAt].Config, seed+500)
			if err != nil {
				return Report{}, err
			}
			rel := tput/matched - 1
			if rel < worst {
				worst = rel
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("RR=%.0f%%", tunedFor*100),
				fmt.Sprintf("RR=%.0f%%", runAt*100),
				f0(tput), pct(rel),
			})
		}
	}
	return Report{
		ID:     "crossworkload",
		Title:  "Cost of running a mismatched configuration",
		Tables: []Table{t},
		Notes: []string{
			"paper (Section 1): running a configuration tuned for the wrong workload degrades throughput by up to 42.9%",
			fmt.Sprintf("measured: worst mismatched-configuration penalty %s", pct(worst)),
		},
	}, nil
}

// DynamicTrace regenerates the paper's motivating end-to-end scenario:
// replay an MG-RAST-like regime-switching trace against (a) the static
// default configuration, (b) Rafiki's reactive controller, and (c) the
// proactive forecaster-driven controller (Section 6 future work), with
// reconfiguration downtime charged per retune.
func DynamicTrace(p *Pipeline) (Report, error) {
	spec := workload.DefaultTraceSpec()
	spec.Days = 1
	spec.Seed = p.Opts.Env.Seed
	trace, err := workload.SynthesizeTrace(spec)
	if err != nil {
		return Report{}, err
	}
	trace = trace[:48] // half a day of 15-minute windows

	tuner, err := core.NewTuner(p.Collector, p.Space, core.TunerOptions{SkipIdentify: true})
	if err != nil {
		return Report{}, err
	}
	// Reuse the pipeline's trained surrogate rather than re-preparing.
	type observer interface {
		Observe(rr float64) (bool, error)
		Retunes() int
	}

	// Each window is measured on a reset server with the current
	// configuration, mirroring the paper's protocol of independent
	// 5-minute benchmark runs per (workload, configuration) point;
	// reconfiguration downtime is charged per retune.
	run := func(makeCtrl func(a core.Applier) (observer, error)) (float64, int, error) {
		current := config.Config{}
		applier := core.Applier(applierFunc(func(cfg config.Config) error {
			current = cfg
			return nil
		}))
		var ctrl observer
		if makeCtrl != nil {
			c, err := makeCtrl(applier)
			if err != nil {
				return 0, 0, err
			}
			ctrl = c
		}
		opsPerWindow := p.Opts.Env.SampleOps / 2
		var totalOps int
		var totalSeconds float64
		downtime := nosql.DefaultCostModel().ReconfigDowntimeSeconds
		for i, w := range trace {
			if ctrl != nil {
				retuned, err := ctrl.Observe(w.ReadRatio)
				if err != nil {
					return 0, 0, err
				}
				if retuned {
					totalSeconds += downtime
				}
			}
			eng, err := nosql.New(nosql.Options{
				Space:  p.Space,
				Config: current,
				Seed:   p.Opts.Env.Seed + 160_000 + int64(i),
			})
			if err != nil {
				return 0, 0, err
			}
			eng.Preload(p.Opts.Env.PreloadVersions)
			res, err := workload.Run(eng, workload.Spec{
				ReadRatio: w.ReadRatio,
				KRDMean:   p.Opts.Env.KRDFraction * float64(eng.KeySpace()),
				Ops:       opsPerWindow,
				Seed:      p.Opts.Env.Seed + int64(200+i),
			})
			if err != nil {
				return 0, 0, err
			}
			totalOps += opsPerWindow
			totalSeconds += res.Seconds
		}
		retunes := 0
		if ctrl != nil {
			retunes = ctrl.Retunes()
		}
		return float64(totalOps) / totalSeconds, retunes, nil
	}

	static, _, err := run(nil)
	if err != nil {
		return Report{}, err
	}
	reactive, reactiveRetunes, err := run(func(a core.Applier) (observer, error) {
		return newSurrogateController(tuner, p, a, 0.3)
	})
	if err != nil {
		return Report{}, err
	}
	proactive, proactiveRetunes, err := run(func(a core.Applier) (observer, error) {
		f, err := forecast.NewMarkov(5)
		if err != nil {
			return nil, err
		}
		return newSurrogateProactive(tuner, p, a, f, 0.3)
	})
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "Replaying a 12-hour regime-switching trace (throughput incl. retune downtime)",
		Header: []string{"strategy", "throughput", "vs static", "retunes"},
		Rows: [][]string{
			{"static default", f0(static), "-", "0"},
			{"reactive controller", f0(reactive), pct(reactive/static - 1), fmt.Sprintf("%d", reactiveRetunes)},
			{"proactive (markov forecast)", f0(proactive), pct(proactive/static - 1), fmt.Sprintf("%d", proactiveRetunes)},
		},
	}
	return Report{
		ID:     "dynamic",
		Title:  "Dynamic workload tracking: static vs reactive vs proactive tuning",
		Tables: []Table{t},
		Notes: []string{
			"the paper's motivation (Sections 1, 2.4.1): static configurations under-perform on MG-RAST's abruptly switching workloads; Rafiki's fast search makes per-window re-tuning feasible",
			"proactive control is the paper's Section 6 future work, driven by the online Markov regime forecaster",
		},
	}, nil
}

// surrogateController adapts the pipeline's already-trained surrogate
// into a reactive controller without re-running Prepare.
type surrogateController struct {
	pipeline    *Pipeline
	applier     core.Applier
	threshold   float64
	haveTuned   bool
	lastTunedRR float64
	retunes     int
}

func newSurrogateController(_ *core.Tuner, p *Pipeline, a core.Applier, threshold float64) (*surrogateController, error) {
	return &surrogateController{pipeline: p, applier: a, threshold: threshold}, nil
}

func (c *surrogateController) Observe(rr float64) (bool, error) {
	if c.haveTuned && absf(rr-c.lastTunedRR) < c.threshold {
		return false, nil
	}
	rec, err := c.pipeline.Recommend(core.RR(rr))
	if err != nil {
		return false, err
	}
	if err := c.applier.Apply(rec.Config); err != nil {
		return false, err
	}
	c.haveTuned = true
	c.lastTunedRR = rr
	c.retunes++
	return true, nil
}

func (c *surrogateController) Retunes() int { return c.retunes }

// surrogateProactive is the forecaster-driven variant.
type surrogateProactive struct {
	surrogateController

	forecaster forecast.Forecaster
}

func newSurrogateProactive(t *core.Tuner, p *Pipeline, a core.Applier, f forecast.Forecaster, threshold float64) (*surrogateProactive, error) {
	inner, err := newSurrogateController(t, p, a, threshold)
	if err != nil {
		return nil, err
	}
	return &surrogateProactive{surrogateController: *inner, forecaster: f}, nil
}

func (c *surrogateProactive) Observe(rr float64) (bool, error) {
	c.forecaster.Observe(rr)
	return c.surrogateController.Observe(c.forecaster.Predict())
}

// applierFunc adapts a function to core.Applier.
type applierFunc func(config.Config) error

func (f applierFunc) Apply(cfg config.Config) error { return f(cfg) }

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
