package bench

import (
	"fmt"

	"rafiki/internal/check"
	"rafiki/internal/cluster"
	"rafiki/internal/config"
	"rafiki/internal/fault"
	"rafiki/internal/workload"
)

// netScenario is one network condition replayed against the standard
// cluster workload.
type netScenario struct {
	name  string
	sched func(T float64) fault.Schedule
}

// netSimRun is one scenario's outcome.
type netSimRun struct {
	throughput float64
	stats      cluster.Stats
	sent       uint64
	delivered  uint64
	dropped    uint64
	partDrops  uint64
	duplicated uint64
}

// runNetCondition benchmarks the standard mixed workload on a cluster
// whose replica traffic crosses the simulated network under the given
// schedule (nil = clean network) and resilience posture.
func runNetCondition(env Env, res cluster.ResilienceOptions, sched fault.Schedule, seed int64) (netSimRun, error) {
	c, err := cluster.New(cluster.Options{
		Nodes:             3,
		ReplicationFactor: 3,
		Space:             config.Cassandra(),
		Seed:              env.Seed ^ seed,
		EpochOps:          128,
		NetBaseLatency:    1e-7,
		NetJitter:         5e-8,
		Obs:               env.Obs,
	})
	if err != nil {
		return netSimRun{}, err
	}
	c.Preload(env.PreloadVersions)
	if err := c.SetReadConsistency(cluster.ConsistencyQuorum); err != nil {
		return netSimRun{}, err
	}
	if err := c.SetResilience(res); err != nil {
		return netSimRun{}, err
	}
	inj, err := fault.NewInjector(c, sched, env.Seed^seed^0x5EED)
	if err != nil {
		return netSimRun{}, err
	}
	c.SetFaultInjector(inj)
	h := fault.NewHarness(c, inj)
	result, err := workload.Run(h, workload.Spec{
		ReadRatio: 0.5,
		KRDMean:   env.KRDFraction * float64(c.KeySpace()),
		Ops:       env.SampleOps,
		Seed:      seed + 211,
	})
	if err != nil {
		return netSimRun{}, err
	}
	inj.Finish()
	if err := inj.Err(); err != nil {
		return netSimRun{}, fmt.Errorf("bench: net schedule: %w", err)
	}
	ns := c.Net().Stats()
	return netSimRun{
		throughput: result.Throughput,
		stats:      c.Stats(),
		sent:       ns.Sent,
		delivered:  ns.Delivered,
		dropped:    ns.Dropped,
		partDrops:  ns.PartitionDrops,
		duplicated: ns.Duplicated,
	}, nil
}

// NetSim demonstrates the simulated message network: the same seeded
// workload replayed over a clean network, a flaky coordinator link, a
// duplicating+delayed link, and an asymmetric partition, reporting how
// each condition surfaces in cluster behavior (hints, unavailability,
// read repair) and in the per-link network counters.
func NetSim(env Env) (Report, error) {
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	const seed = 150_000

	// Probe run fixes the per-op time constant; the measurement runs
	// then use resilience constants scaled to it, as exp_fault does —
	// the wall-clock defaults would turn each lost message's timeout
	// into an eternity at simulator timescale.
	probe, err := runNetCondition(env, cluster.PassiveResilience(), nil, seed)
	if err != nil {
		return Report{}, err
	}
	perOp := 1 / probe.throughput
	res := cluster.DefaultResilienceOptions()
	res.BackoffBase = perOp
	res.BackoffMax = 25 * perOp
	res.ExpectedOpSeconds = perOp
	res.OpTimeout = 20 * perOp

	clean, err := runNetCondition(env, res, nil, seed)
	if err != nil {
		return Report{}, err
	}
	// Time base for the schedules: the clean run's span at this op
	// count, recovered from throughput (aops = ops/seconds).
	T := float64(env.SampleOps) / clean.throughput

	scenarios := []netScenario{
		{"flaky c->0 (drop 40%)", func(T float64) fault.Schedule {
			return fault.Schedule{
				{Kind: fault.NetFlaky, Node: fault.CoordinatorEndpoint, Peer: 0,
					At: 0.10 * T, Until: 0.70 * T, DropProb: 0.4},
			}
		}},
		{"dup+delay on 0->c", func(T float64) fault.Schedule {
			return fault.Schedule{
				{Kind: fault.NetDup, Node: 0, Peer: fault.CoordinatorEndpoint,
					At: 0.10 * T, Until: 0.70 * T, DupProb: 0.5},
				{Kind: fault.NetDelay, Node: 0, Peer: fault.CoordinatorEndpoint,
					At: 0.10 * T, Until: 0.70 * T, DelayFactor: 8},
			}
		}},
		{"partition c->1", func(T float64) fault.Schedule {
			return fault.Schedule{
				{Kind: fault.Partition, Node: fault.CoordinatorEndpoint, Peer: 1,
					At: 0.20 * T, Until: 0.60 * T},
			}
		}},
	}

	t := Table{
		Title:  "The same seeded workload under simulated network conditions (3 nodes, RF=3, QUORUM, RR=50%)",
		Header: []string{"network", "aops", "vs clean", "msgs sent", "dropped", "part drops", "dup copies", "hinted writes", "read repairs", "unavail reads"},
	}
	row := func(name string, r netSimRun, base float64) []string {
		return []string{
			name, f0(r.throughput), pct(r.throughput/base - 1),
			fmt.Sprint(r.sent), fmt.Sprint(r.dropped), fmt.Sprint(r.partDrops),
			fmt.Sprint(r.duplicated), fmt.Sprint(r.stats.HintsStored),
			fmt.Sprint(r.stats.ReadRepairs), fmt.Sprint(r.stats.UnavailableReads),
		}
	}
	t.Rows = append(t.Rows, row("clean", clean, clean.throughput))
	var runs []netSimRun
	for _, sc := range scenarios {
		r, err := runNetCondition(env, res, sc.sched(T), seed)
		if err != nil {
			return Report{}, fmt.Errorf("bench: scenario %s: %w", sc.name, err)
		}
		runs = append(runs, r)
		t.Rows = append(t.Rows, row(sc.name, r, clean.throughput))
	}

	// Determinism: replaying the last scenario must reproduce it bit
	// for bit, network counters included.
	again, err := runNetCondition(env, res, scenarios[len(scenarios)-1].sched(T), seed)
	if err != nil {
		return Report{}, err
	}
	last := runs[len(runs)-1]
	identical := again == last

	notes := []string{
		"every replica read, write, hint replay, and repair crosses the simulated network; partitions and drops therefore hit exactly the operations a real network would lose",
		"dropped quorum-write responses become hints (the write happened but the ack was lost), and a flaky read path drives read repair: replicas that missed a version are patched back on the next successful quorum read",
		fmt.Sprintf("determinism: replaying the partition scenario at the same seed identical = %v", identical),
	}
	return Report{
		ID:     "netsim",
		Title:  "Network simulation: replica traffic as messages under seeded link faults",
		Tables: []Table{t},
		Notes:  notes,
	}, nil
}

// chaosSeedSet is the fixed exploration set used by Chaos and by
// `make chaos`: small enough to stay a smoke test, wide enough that
// schedule generation covers partitions, flaky/dup/delay links, node
// failures, restarts, and log corruption.
func chaosSeedSet() []int64 {
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// chaosTable renders one exploration's per-seed results and collects
// its corruption-free violations (the gating verdicts).
func chaosTable(title string, rep *check.ChaosReport) (Table, []check.SeedResult) {
	t := Table{
		Title:  title,
		Header: []string{"seed", "events", "ops", "violations", "undecided", "verdict", "reproducer events", "shrink runs"},
	}
	var violations []check.SeedResult
	for _, res := range rep.Results {
		repro := "-"
		shrunk := "-"
		if res.Verdict != check.VerdictOK {
			repro = fmt.Sprint(len(res.Reproducer))
			shrunk = fmt.Sprint(res.ShrinkRuns)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(res.Seed), fmt.Sprint(res.Events), fmt.Sprint(res.Ops),
			fmt.Sprint(res.Violations), fmt.Sprint(res.Undecided),
			res.Verdict, repro, shrunk,
		})
		if res.Verdict == check.VerdictViolation {
			violations = append(violations, res)
		}
	}
	return t, violations
}

// Chaos runs the consistency chaos search: each seed generates a
// fault+network schedule, replays a concurrent workload under it,
// records the operation history, and checks read-your-writes,
// monotonic reads, and single-key linearizability. Any failing
// schedule is shrunk to a minimal reproducer. The suite runs two
// explorations — the classic 3-node fault mix, and a 16-node RF=3 ring
// whose schedules also draw joins, decommissions, and rolling restarts
// so consistency is checked with rebalances in flight. A
// corruption-free reproducer (verdict "violation") in either phase
// means a real protocol bug and returns an error, which is what lets
// `make chaos` gate CI on it.
func Chaos(env Env) (Report, error) {
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	cfg := check.ChaosConfig{Seeds: chaosSeedSet(), Events: 8}
	rep, err := check.RunChaos(cfg)
	if err != nil {
		return Report{}, err
	}
	// Determinism: the whole exploration, shrinking included, must
	// render byte-identically on a second run.
	again, err := check.RunChaos(cfg)
	if err != nil {
		return Report{}, err
	}
	identical := rep.Render() == again.Render()

	// Topology phase: a 16-node RF=3 ring whose event mix includes
	// AddNode, DecommissionNode, and RollingRestart, so node failures,
	// partitions, and corruption race streaming rebalances.
	topoCfg := check.ChaosConfig{
		Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8}, Nodes: 16, RF: 3,
		Events: 8, Topology: true,
	}
	topoRep, err := check.RunChaos(topoCfg)
	if err != nil {
		return Report{}, err
	}
	topoAgain, err := check.RunChaos(topoCfg)
	if err != nil {
		return Report{}, err
	}
	topoIdentical := topoRep.Render() == topoAgain.Render()

	t, violations := chaosTable(
		"Chaos search over seeded fault+network schedules (3 nodes, RF=3, QUORUM/QUORUM)", rep)
	tt, topoViolations := chaosTable(
		"Topology chaos: joins, decommissions, and rolling restarts racing rebalance (16 nodes, RF=3, QUORUM/QUORUM)", topoRep)
	violations = append(violations, topoViolations...)

	notes := []string{
		fmt.Sprintf("worst verdict: %s (fault mix), %s (topology mix)", rep.Worst(), topoRep.Worst()),
		"data-loss verdicts have reproducers containing log corruption or corrupted restarts: acknowledged state was destroyed, which the current durability model permits; they are reported, not failed on",
		"a corruption-free reproducer would mean the replication protocol itself violated consistency — that fails this experiment (and `make chaos`)",
		"topology schedules keep every decommission feasible (members never dip below RF), including through shrinking, so a reproducer is always a runnable schedule",
		fmt.Sprintf("determinism: two full explorations at the same seeds render identically = %v (fault mix), %v (topology mix)", identical, topoIdentical),
	}
	report := Report{
		ID:     "chaos",
		Title:  "Chaos search: consistency checking under explored fault schedules",
		Tables: []Table{t, tt},
		Notes:  notes,
	}
	if len(violations) > 0 {
		v := violations[0]
		return report, fmt.Errorf("bench: chaos found a corruption-free consistency violation (seed %d, %d-event reproducer): %s",
			v.Seed, len(v.Reproducer), v.First)
	}
	return report, nil
}
