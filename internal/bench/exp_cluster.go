package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/core"
)

// Table3 regenerates the multi-server experiment: the improvement of
// Rafiki's configuration over the default for a single server and a
// two-server cluster with an extra shooter and replication factor 2
// (Section 4.9).
func Table3(p *Pipeline) (Report, error) {
	workloads := []float64{0.1, 0.5, 1.0}
	t := Table{
		Title:  "Rafiki-vs-default improvement, single server vs two servers",
		Header: []string{"workload", "1-node default", "1-node rafiki", "1-node improve", "2-node default", "2-node rafiki", "2-node improve"},
	}
	env := p.Opts.Env
	seed := env.Seed + 110_000
	for _, rr := range workloads {
		seed += 100
		rec, err := p.Recommend(core.RR(rr))
		if err != nil {
			return Report{}, err
		}

		oneDef, err := env.ClusterSample(1, 1, core.RR(rr), config.Config{}, seed)
		if err != nil {
			return Report{}, err
		}
		oneRaf, err := env.ClusterSample(1, 1, core.RR(rr), rec.Config, seed+1)
		if err != nil {
			return Report{}, err
		}
		twoDef, err := env.ClusterSample(2, 2, core.RR(rr), config.Config{}, seed+2)
		if err != nil {
			return Report{}, err
		}
		twoRaf, err := env.ClusterSample(2, 2, core.RR(rr), rec.Config, seed+3)
		if err != nil {
			return Report{}, err
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("RR=%.0f%%", rr*100),
			f0(oneDef), f0(oneRaf), pct(oneRaf/oneDef - 1),
			f0(twoDef), f0(twoRaf), pct(twoRaf/twoDef - 1),
		})
	}
	return Report{
		ID:     "table3",
		Title:  "Multi-server tuning: improvement carries over to a replicated cluster",
		Tables: []Table{t},
		Notes: []string{
			"paper: single-server improvements 15.2% / 41.34% / 48.35% at RR=10/50/100%; two-server 3.2% / 67.37% / 51.4%; averages 34% vs 40%",
			"shape under test: improvements persist on the cluster and grow with the read ratio",
			"the two-server setup replicates every key (RF=2) so each instance stores as many keys as the single-server case, as in the paper",
		},
	}, nil
}
