package bench

import (
	"fmt"
	"math/rand"

	"rafiki/internal/config"
	"rafiki/internal/core"
)

// SearchResult is the outcome of a measured (non-surrogate) search.
type SearchResult struct {
	// Best is the winning configuration and BestThroughput its measured
	// performance.
	Best           config.Config
	BestThroughput float64
	// Samples counts real benchmark runs spent.
	Samples int
}

// GridConfigs returns the paper's exhaustive-search grid: 80
// configurations per workload (Section 4.8 tests 80 configuration sets
// for each of three workloads).
func GridConfigs() []config.Config {
	var out []config.Config
	for _, cm := range []float64{config.CompactionSizeTiered, config.CompactionLeveled} {
		for _, cw := range []float64{32, 64} {
			for _, fcz := range []float64{32, 512, 1024, 1536, 2048} {
				for _, mt := range []float64{0.11, 0.35} {
					for _, cc := range []float64{2, 8} {
						out = append(out, config.Config{
							config.ParamCompactionStrategy:   cm,
							config.ParamConcurrentWrites:     cw,
							config.ParamFileCacheSize:        fcz,
							config.ParamMemtableCleanup:      mt,
							config.ParamConcurrentCompactors: cc,
						})
					}
				}
			}
		}
	}
	return out
}

// GridSearch measures every grid configuration at the given workload
// and returns the best — the paper's "theoretically best achievable"
// reference point.
func GridSearch(c core.Collector, w core.Workload, configs []config.Config, seed int64) (SearchResult, error) {
	if len(configs) == 0 {
		return SearchResult{}, fmt.Errorf("bench: empty grid")
	}
	var res SearchResult
	for i, cfg := range configs {
		tput, err := c.Sample(w, cfg, seed+int64(i))
		if err != nil {
			return SearchResult{}, fmt.Errorf("bench: grid point %d: %w", i, err)
		}
		res.Samples++
		if tput > res.BestThroughput {
			res.BestThroughput = tput
			res.Best = cfg.Clone()
		}
	}
	return res, nil
}

// GreedySearch tunes one parameter at a time by measured sweeps,
// holding the others fixed — the baseline Section 4.6 argues cannot
// find the optimum because parameters interdepend.
func GreedySearch(c core.Collector, space *config.Space, w core.Workload, seed int64) (SearchResult, error) {
	keys, err := space.KeyParams()
	if err != nil {
		return SearchResult{}, err
	}
	current := config.Config{}
	var res SearchResult
	best, err := c.Sample(w, current, seed)
	if err != nil {
		return SearchResult{}, err
	}
	res.Samples++
	for _, p := range keys {
		bestV, found := 0.0, false
		for _, v := range p.Sweep {
			trial := current.Clone()
			trial[p.Name] = v
			seed++
			tput, err := c.Sample(w, trial, seed)
			if err != nil {
				return SearchResult{}, fmt.Errorf("bench: greedy %s=%v: %w", p.Name, v, err)
			}
			res.Samples++
			if tput > best {
				best = tput
				bestV = v
				found = true
			}
		}
		if found {
			current[p.Name] = bestV
		}
	}
	res.Best = current
	res.BestThroughput = best
	return res, nil
}

// RandomSearch measures n uniformly random key-parameter configurations
// and keeps the best, a budget-matched baseline for the GA ablation.
func RandomSearch(c core.Collector, space *config.Space, w core.Workload, n int, seed int64) (SearchResult, error) {
	if n <= 0 {
		return SearchResult{}, fmt.Errorf("bench: random search needs n > 0, got %d", n)
	}
	keys, err := space.KeyParams()
	if err != nil {
		return SearchResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	var res SearchResult
	for i := 0; i < n; i++ {
		cfg := make(config.Config, len(keys))
		for _, p := range keys {
			cfg[p.Name] = p.Clamp(p.Min + rng.Float64()*(p.Max-p.Min))
		}
		tput, err := c.Sample(w, cfg, seed+int64(i)+1)
		if err != nil {
			return SearchResult{}, err
		}
		res.Samples++
		if tput > res.BestThroughput {
			res.BestThroughput = tput
			res.Best = cfg
		}
	}
	return res, nil
}
