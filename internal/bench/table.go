// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 4): data collection,
// search baselines (exhaustive grid, greedy one-parameter, random), and
// one experiment function per paper artifact, each returning a Report
// whose rendering mirrors the published rows/series.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact.
type Table struct {
	// Title labels the artifact ("Table 1", "Figure 4 data", ...).
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the cell values.
	Rows [][]string
}

// Render draws the table with aligned ASCII columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Report is one experiment's full output.
type Report struct {
	// ID is the experiment identifier ("figure4", "table1", ...).
	ID string
	// Title is the human-readable description.
	Title string
	// Tables holds the data artifacts.
	Tables []Table
	// Notes records paper-vs-measured commentary and caveats.
	Notes []string
}

// Render draws the full report.
func (r Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteByte('\n')
		sb.WriteString(t.Render())
	}
	if len(r.Notes) > 0 {
		sb.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "note: %s\n", n)
		}
	}
	return sb.String()
}

// f0 formats a float with no decimals, f1/f2 with one/two.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a ratio as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
