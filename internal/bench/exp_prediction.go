package bench

import (
	"fmt"
	"math/rand"

	"rafiki/internal/core"
	"rafiki/internal/nn"
	"rafiki/internal/obs"
	"rafiki/internal/stats"
)

// predictionEval summarizes surrogate quality on a held-out set.
type predictionEval struct {
	MAPE, R2, RMSE float64
	// Errors holds signed percentage errors for histogramming.
	Errors []float64
}

// evalSplit trains a fresh surrogate on train and scores it on test.
func evalSplit(space *Pipeline, train, test core.Dataset, modelCfg nn.ModelConfig) (predictionEval, error) {
	sur, err := core.TrainSurrogate(train, space.Space, modelCfg)
	if err != nil {
		return predictionEval{}, err
	}
	xs, ys, err := test.Features(space.Space)
	if err != nil {
		return predictionEval{}, err
	}
	preds, err := sur.Model.PredictBatch(xs)
	if err != nil {
		return predictionEval{}, err
	}
	mape, err := stats.MAPE(preds, ys)
	if err != nil {
		return predictionEval{}, err
	}
	r2, err := stats.R2(preds, ys)
	if err != nil {
		return predictionEval{}, err
	}
	rmse, err := stats.RMSE(preds, ys)
	if err != nil {
		return predictionEval{}, err
	}
	errsPct, err := stats.PercentErrors(preds, ys)
	if err != nil {
		return predictionEval{}, err
	}
	return predictionEval{MAPE: mape, R2: r2, RMSE: rmse, Errors: errsPct}, nil
}

// splitConfigs holds out ~fraction of the configurations (every sample
// of a held-out configuration goes to test), Section 4.3's protocol.
func splitConfigs(p *Pipeline, fraction float64, seed int64) (train, test core.Dataset) {
	keys := p.Dataset.ConfigKeys(p.Space)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := int(float64(len(keys)) * fraction)
	if n < 1 {
		n = 1
	}
	held := make(map[string]bool, n)
	for _, k := range keys[:n] {
		held[k] = true
	}
	return p.Dataset.SplitByConfig(p.Space, held)
}

// splitWorkloads holds out ~fraction of the read ratios.
func splitWorkloads(p *Pipeline, fraction float64, seed int64) (train, test core.Dataset) {
	ws := p.Dataset.Workloads()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ws), func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	n := int(float64(len(ws)) * fraction)
	if n < 1 {
		n = 1
	}
	held := make(map[core.Workload]bool, n)
	for _, w := range ws[:n] {
		held[w] = true
	}
	return p.Dataset.SplitByWorkload(held)
}

// PredictionTrials controls the validation experiments' repetition
// count (the paper runs 10 randomized trials; the suite default trades
// a few for runtime).
const PredictionTrials = 4

// Table2 regenerates the prediction-model performance comparison:
// ensemble (20 nets, pruned to 14) vs a single net, on unseen
// configurations and unseen workloads (Section 4.7).
func Table2(p *Pipeline) (Report, error) {
	type cell struct{ mape, r2, rmse float64 }
	run := func(ensembleSize int, byConfig bool) (cell, []float64, error) {
		// Trials are independent (per-trial split and model seeds), so
		// they fan out; aggregation below walks them in trial order.
		evs, err := runTrials(p, "table2", PredictionTrials, func(trial int, reg *obs.Registry) (predictionEval, error) {
			var train, test core.Dataset
			if byConfig {
				train, test = splitConfigs(p, 0.25, p.Opts.Env.Seed+int64(trial)*13)
			} else {
				train, test = splitWorkloads(p, 0.25, p.Opts.Env.Seed+int64(trial)*17)
			}
			cfg := p.Opts.Model
			cfg.EnsembleSize = ensembleSize
			if ensembleSize == 1 {
				cfg.PruneFraction = 0
			}
			cfg.Seed = p.Opts.Model.Seed + int64(trial)*101
			cfg.Obs = reg
			return evalSplit(p, train, test, cfg)
		})
		if err != nil {
			return cell{}, nil, err
		}
		var agg cell
		var allErrs []float64
		for _, ev := range evs {
			agg.mape += ev.MAPE
			agg.r2 += ev.R2
			agg.rmse += ev.RMSE
			allErrs = append(allErrs, ev.Errors...)
		}
		n := float64(PredictionTrials)
		return cell{agg.mape / n, agg.r2 / n, agg.rmse / n}, allErrs, nil
	}

	ens20Cfg, _, err := run(20, true)
	if err != nil {
		return Report{}, err
	}
	ens20WL, _, err := run(20, false)
	if err != nil {
		return Report{}, err
	}
	ens1Cfg, _, err := run(1, true)
	if err != nil {
		return Report{}, err
	}
	ens1WL, _, err := run(1, false)
	if err != nil {
		return Report{}, err
	}

	t := Table{
		Title:  "Prediction model performance (averaged over randomized 75/25 splits)",
		Header: []string{"metric", "20 nets / config", "20 nets / workload", "1 net / config", "1 net / workload"},
		Rows: [][]string{
			{"prediction error (MAPE)", f1(ens20Cfg.mape) + "%", f1(ens20WL.mape) + "%", f1(ens1Cfg.mape) + "%", f1(ens1WL.mape) + "%"},
			{"R2", f2(ens20Cfg.r2), f2(ens20WL.r2), f2(ens1Cfg.r2), f2(ens1WL.r2)},
			{"avg RMSE (ops/s)", f0(ens20Cfg.rmse), f0(ens20WL.rmse), f0(ens1Cfg.rmse), f0(ens1WL.rmse)},
		},
	}
	return Report{
		ID:     "table2",
		Title:  "Surrogate prediction performance: ensemble vs single network",
		Tables: []Table{t},
		Notes: []string{
			"paper: 20 nets -> 7.5% error / R2 0.74 (unseen configs), 5.6% / 0.75 (unseen workloads); 1 net -> 10.1% / 0.51 and 5.95% / 0.73",
			"shape under test: the ensemble beats the single net, and unseen workloads predict better than unseen configurations",
			fmt.Sprintf("suite runs %d trials per cell (paper: 10)", PredictionTrials),
		},
	}, nil
}

// Figure7 regenerates the learning curve: prediction error vs number of
// training samples, for unseen configurations and unseen workloads
// (Section 4.7.1); error should level off near the full dataset size.
func Figure7(p *Pipeline) (Report, error) {
	sizes := []int{36, 72, 108, 144, 180}
	t := Table{
		Title:  "Prediction error (MAPE %) vs number of training samples",
		Header: []string{"training samples", "unseen configs", "unseen workloads"},
	}
	cfgTrainFull, cfgTest := splitConfigs(p, 0.25, p.Opts.Env.Seed+31)
	wlTrainFull, wlTest := splitWorkloads(p, 0.25, p.Opts.Env.Seed+37)

	subsample := func(ds core.Dataset, n int, seed int64) core.Dataset {
		if n >= len(ds.Samples) {
			return ds
		}
		idx := rand.New(rand.NewSource(seed)).Perm(len(ds.Samples))[:n]
		var out core.Dataset
		for _, i := range idx {
			out.Samples = append(out.Samples, ds.Samples[i])
		}
		return out
	}

	modelCfg := p.Opts.Model
	// The learning curve retrains many models; a leaner ensemble keeps
	// the suite fast while preserving the curve's shape.
	if modelCfg.EnsembleSize > 6 {
		modelCfg.EnsembleSize = 6
	}

	// Each curve point trains two fresh surrogates on disjoint
	// subsamples — independent work that fans out across the sizes.
	type point struct{ cfgMAPE, wlMAPE float64 }
	points, err := runTrials(p, "figure7", len(sizes), func(i int, reg *obs.Registry) (point, error) {
		n := sizes[i]
		cfg := modelCfg
		cfg.Obs = reg
		evCfg, err := evalSplit(p, subsample(cfgTrainFull, n, int64(n)), cfgTest, cfg)
		if err != nil {
			return point{}, err
		}
		evWL, err := evalSplit(p, subsample(wlTrainFull, n, int64(n)*3), wlTest, cfg)
		if err != nil {
			return point{}, err
		}
		return point{cfgMAPE: evCfg.MAPE, wlMAPE: evWL.MAPE}, nil
	})
	if err != nil {
		return Report{}, err
	}
	for i, pt := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sizes[i]), f1(pt.cfgMAPE), f1(pt.wlMAPE),
		})
	}
	return Report{
		ID:     "figure7",
		Title:  "Learning curve of the surrogate model",
		Tables: []Table{t},
		Notes: []string{
			"paper: error decreases with more samples and levels off around 180, reaching ~7.5% (unseen configs) and ~5.6% (unseen workloads)",
		},
	}, nil
}

// Figure8 regenerates the unseen-configuration error histogram
// (Section 4.7.2): near-zero mean, most mass within |5|%.
func Figure8(p *Pipeline) (Report, error) {
	return errorHistogram(p, "figure8", "Prediction-error distribution for unseen configurations", true)
}

// Figure9 is the unseen-workload error histogram.
func Figure9(p *Pipeline) (Report, error) {
	return errorHistogram(p, "figure9", "Prediction-error distribution for unseen workloads", false)
}

func errorHistogram(p *Pipeline, id, title string, byConfig bool) (Report, error) {
	evs, err := runTrials(p, id, PredictionTrials, func(trial int, reg *obs.Registry) (predictionEval, error) {
		var train, test core.Dataset
		if byConfig {
			train, test = splitConfigs(p, 0.25, p.Opts.Env.Seed+int64(trial)*13)
		} else {
			train, test = splitWorkloads(p, 0.25, p.Opts.Env.Seed+int64(trial)*17)
		}
		cfg := p.Opts.Model
		cfg.Seed = p.Opts.Model.Seed + int64(trial)*101
		cfg.Obs = reg
		return evalSplit(p, train, test, cfg)
	})
	if err != nil {
		return Report{}, err
	}
	var all []float64
	for _, ev := range evs {
		all = append(all, ev.Errors...)
	}
	h, err := stats.NewHistogram(-20, 20, 16)
	if err != nil {
		return Report{}, err
	}
	h.AddAll(all)

	var absSum, sum float64
	for _, e := range all {
		sum += e
		if e < 0 {
			absSum -= e
		} else {
			absSum += e
		}
	}
	mean := sum / float64(len(all))
	absMean := absSum / float64(len(all))

	hist := Table{
		Title:  "Histogram of signed prediction errors (percent)",
		Header: []string{"distribution"},
		Rows:   [][]string{{"\n" + h.Render(40)}},
	}
	summary := Table{
		Title:  "Error summary",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"validations", fmt.Sprintf("%d", len(all))},
			{"mean signed error", f2(mean) + "%"},
			{"mean absolute error", f2(absMean) + "%"},
		},
	}
	return Report{
		ID:     id,
		Title:  title,
		Tables: []Table{summary, hist},
		Notes: []string{
			"paper: average absolute error 7.5% (configs) / 5.6% (workloads), most mass within |5|%, little bias (mean near zero)",
		},
	}, nil
}
