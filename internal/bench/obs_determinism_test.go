package bench

import (
	"bytes"
	"testing"

	"rafiki/internal/cluster"
	"rafiki/internal/obs"
)

// faultPostureSnapshot runs the full-stack resilience posture under the
// seeded fault schedule with a fresh registry and returns the exported
// snapshot JSON.
func faultPostureSnapshot(t *testing.T, ops int) []byte {
	t.Helper()
	env := DefaultEnv()
	env.SampleOps = ops
	env.Obs = obs.NewRegistry()

	const seed = 130_000
	healthy, err := runFaultPosture(env, cluster.PassiveResilience(), nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	sched := faultSchedule(healthy.seconds)
	perOp := healthy.seconds / float64(env.SampleOps)
	full := cluster.DefaultResilienceOptions()
	full.BackoffBase = perOp
	full.BackoffMax = 25 * perOp
	full.ExpectedOpSeconds = perOp
	full.OpTimeout = 20 * perOp
	if _, err := runFaultPosture(env, full, sched, seed); err != nil {
		t.Fatal(err)
	}

	blob, err := env.Obs.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestFaultInjectionSnapshotDeterminism is the observability layer's
// reproducibility contract: two same-seed fault-injection runs, each
// with its own fresh registry, must export byte-identical snapshots —
// every counter, gauge, histogram bin, and span, in the same order.
// Nothing on the measured path may consult the wall clock.
func TestFaultInjectionSnapshotDeterminism(t *testing.T) {
	ops := 30_000
	if testing.Short() {
		ops = 8_000
	}
	a := faultPostureSnapshot(t, ops)
	b := faultPostureSnapshot(t, ops)
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed runs exported different snapshots:\nrun1 %d bytes, run2 %d bytes", len(a), len(b))
	}
	if len(a) == 0 || !bytes.Contains(a, []byte("cluster.op_attempts")) {
		t.Error("snapshot missing expected cluster counters")
	}
	if !bytes.Contains(a, []byte("nosql.flush")) {
		t.Error("snapshot missing engine flush spans")
	}
}
