package bench

import (
	"fmt"
	"strings"

	"rafiki/internal/workload"
)

// Figure3 regenerates the MG-RAST workload-pattern figure: read/write
// ratios per 15-minute window over 4 days, with abrupt regime
// transitions (Section 2.4.1).
func Figure3(env Env) (Report, error) {
	spec := workload.DefaultTraceSpec()
	spec.Seed = env.Seed
	trace, err := workload.SynthesizeTrace(spec)
	if err != nil {
		return Report{}, err
	}
	stats, err := workload.AnalyzeTrace(trace)
	if err != nil {
		return Report{}, err
	}

	summary := Table{
		Title:  "Trace regime composition (4 days, 15-minute windows)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"windows", fmt.Sprintf("%d", len(trace))},
			{"read-heavy fraction (RR >= 0.7)", pct(stats.ReadHeavyFrac)},
			{"write-heavy fraction (RR <= 0.3)", pct(stats.WriteHeavyFrac)},
			{"mixed fraction", pct(stats.MixedFrac)},
			{"abrupt transitions (|dRR| > 0.3)", fmt.Sprintf("%d", stats.Transitions)},
		},
	}

	// A coarse timeline of the first day: one character per window,
	// R/W/m by read ratio — the visual shape of Figure 3.
	var sb strings.Builder
	day := 24 * 60 / spec.WindowMinutes
	if day > len(trace) {
		day = len(trace)
	}
	for _, w := range trace[:day] {
		switch {
		case w.ReadRatio >= 0.7:
			sb.WriteByte('R')
		case w.ReadRatio <= 0.3:
			sb.WriteByte('W')
		default:
			sb.WriteByte('m')
		}
	}
	timeline := Table{
		Title:  "First-day regime timeline (R=read-heavy, W=write-heavy, m=mixed)",
		Header: []string{"windows 0.." + fmt.Sprint(day-1)},
		Rows:   [][]string{{sb.String()}},
	}

	return Report{
		ID:     "figure3",
		Title:  "MG-RAST workload pattern (read/write ratio per 15-minute window)",
		Tables: []Table{summary, timeline},
		Notes: []string{
			"paper: periods of read-heavy, write-heavy and mixed activity with abrupt transitions lasting <= 15 minutes",
			"trace is synthetic (MG-RAST logs are not available); the regime-switching generator is calibrated to the figure's qualitative profile",
		},
	}, nil
}
