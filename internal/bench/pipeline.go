package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
)

// PipelineOptions size the shared offline pipeline behind the
// experiments.
type PipelineOptions struct {
	// Env is the benchmark environment.
	Env Env
	// Collect sizes data collection (the paper's 11 workloads x 20
	// configurations).
	Collect core.CollectOptions
	// Model sizes the surrogate. The experiment default keeps the
	// paper's [14,4] architecture and 20-net ensemble but caps training
	// epochs so the full suite runs in minutes.
	Model nn.ModelConfig
	// GA sizes the configuration search.
	GA ga.Options
}

// DefaultPipelineOptions mirrors the paper at experiment-suite scale.
func DefaultPipelineOptions() PipelineOptions {
	model := nn.DefaultModelConfig()
	model.BR.Epochs = 60
	model.Seed = 42
	gaOpts := ga.DefaultOptions()
	gaOpts.Seed = 42
	return PipelineOptions{
		Env:     DefaultEnv(),
		Collect: core.DefaultCollectOptions(),
		Model:   model,
		GA:      gaOpts,
	}
}

// Pipeline caches the expensive offline artifacts (dataset, trained
// surrogate) shared by several experiments.
type Pipeline struct {
	// Opts echoes the construction options.
	Opts PipelineOptions
	// Space is the datastore's configuration space.
	Space *config.Space
	// Collector benchmarks (workload, config) points.
	Collector core.Collector
	// Dataset is the collected training data.
	Dataset core.Dataset
	// Surrogate is the trained performance model.
	Surrogate *core.Surrogate
}

// NewCassandraPipeline collects the Cassandra dataset and trains the
// surrogate.
func NewCassandraPipeline(opts PipelineOptions) (*Pipeline, error) {
	return newPipeline(opts, config.Cassandra(), opts.Env.CassandraCollector())
}

// NewScyllaPipeline is the ScyllaDB variant (Section 4.10's key set).
func NewScyllaPipeline(opts PipelineOptions) (*Pipeline, error) {
	return newPipeline(opts, config.ScyllaDB(), opts.Env.ScyllaCollector())
}

func newPipeline(opts PipelineOptions, space *config.Space, collector core.Collector) (*Pipeline, error) {
	if err := opts.Env.Validate(); err != nil {
		return nil, err
	}
	// Route trainer- and search-level telemetry into the environment's
	// registry alongside the engine counters the collector already feeds.
	if opts.Env.Obs != nil {
		if opts.Model.Obs == nil {
			opts.Model.Obs = opts.Env.Obs
		}
		if opts.GA.Obs == nil {
			opts.GA.Obs = opts.Env.Obs
		}
		if opts.Collect.Obs == nil {
			opts.Collect.Obs = opts.Env.Obs
		}
	}
	// One knob drives every stage's parallelism: collection fan-out,
	// concurrent ensemble training, and (through the fitted model) batch
	// prediction inside the GA.
	if opts.Collect.Workers == 0 {
		opts.Collect.Workers = opts.Env.Workers
	}
	if opts.Model.Workers == 0 {
		opts.Model.Workers = opts.Env.Workers
	}
	ds, err := core.Collect(collector, space, opts.Collect)
	if err != nil {
		return nil, fmt.Errorf("bench: pipeline collect: %w", err)
	}
	sur, err := core.TrainSurrogate(ds, space, opts.Model)
	if err != nil {
		return nil, fmt.Errorf("bench: pipeline train: %w", err)
	}
	return &Pipeline{
		Opts:      opts,
		Space:     space,
		Collector: collector,
		Dataset:   ds,
		Surrogate: sur,
	}, nil
}

// MeasureDefault benchmarks the default configuration at w.
func (p *Pipeline) MeasureDefault(w core.Workload, seed int64) (float64, error) {
	return p.Collector.Sample(w, config.Config{}, seed)
}

// Recommend runs the GA over the surrogate for w.
func (p *Pipeline) Recommend(w core.Workload) (core.OptimizeResult, error) {
	return p.Surrogate.Optimize(w, p.Opts.GA)
}

// RecommendAndMeasure searches for a configuration and benchmarks it
// for real, returning (recommendation, measured throughput).
func (p *Pipeline) RecommendAndMeasure(w core.Workload, seed int64) (core.OptimizeResult, float64, error) {
	rec, err := p.Recommend(w)
	if err != nil {
		return core.OptimizeResult{}, 0, err
	}
	tput, err := p.Collector.Sample(w, rec.Config, seed)
	if err != nil {
		return core.OptimizeResult{}, 0, err
	}
	return rec, tput, nil
}
