package bench

import (
	"fmt"

	"rafiki/internal/config"
	"rafiki/internal/nosql"
	"rafiki/internal/stats"
	"rafiki/internal/workload"
)

// Figure10 regenerates the throughput-variance comparison: Cassandra
// and ScyllaDB under an identical stationary 70%-read workload with
// default configurations, sampled over time (Section 4.10). ScyllaDB's
// internal auto-tuner makes its throughput fluctuate — sometimes by
// ~60% for extended periods — which is what degrades its surrogate's
// accuracy relative to Cassandra's.
func Figure10(env Env) (Report, error) {
	const rr = 0.7
	ops := env.SampleOps * 3 // longer run to expose the slow wander

	runCassandra := func() ([]float64, error) {
		eng, err := nosql.New(nosql.Options{Space: config.Cassandra(), Seed: env.Seed + 11})
		if err != nil {
			return nil, err
		}
		eng.Preload(env.PreloadVersions)
		if _, err := workload.Run(eng, workload.Spec{
			ReadRatio: rr,
			KRDMean:   env.KRDFraction * float64(eng.KeySpace()),
			Ops:       ops,
			Seed:      env.Seed + 12,
		}); err != nil {
			return nil, err
		}
		return eng.Metrics().EpochThroughputs, nil
	}
	runScylla := func() ([]float64, error) {
		eng, err := nosql.NewScylla(nosql.ScyllaOptions{Seed: env.Seed + 11})
		if err != nil {
			return nil, err
		}
		eng.Preload(env.PreloadVersions)
		if _, err := workload.Run(eng, workload.Spec{
			ReadRatio: rr,
			KRDMean:   env.KRDFraction * float64(eng.KeySpace()),
			Ops:       ops,
			Seed:      env.Seed + 12,
		}); err != nil {
			return nil, err
		}
		return eng.Metrics().EpochThroughputs, nil
	}

	cSeries, err := runCassandra()
	if err != nil {
		return Report{}, err
	}
	sSeries, err := runScylla()
	if err != nil {
		return Report{}, err
	}

	describe := func(name string, series []float64) []string {
		mean := stats.Mean(series)
		sd := stats.StdDev(series)
		mn, _ := stats.Min(series)
		mx, _ := stats.Max(series)
		cv := 0.0
		if mean > 0 {
			cv = sd / mean
		}
		// Local variability separates the auto-tuner's sample-to-sample
		// jitter from slow trends like compaction-debt warm-up, which
		// both engines share.
		var local float64
		for i := 1; i < len(series); i++ {
			d := series[i] - series[i-1]
			if d < 0 {
				d = -d
			}
			local += d
		}
		if len(series) > 1 && mean > 0 {
			local = local / float64(len(series)-1) / mean
		}
		return []string{
			name,
			fmt.Sprintf("%d", len(series)),
			f0(mean), f0(sd), pct(cv), pct(local), f0(mn), f0(mx),
			pct((mx - mn) / mean),
		}
	}
	t := Table{
		Title:  "Throughput over time at RR=70% (default configurations)",
		Header: []string{"engine", "samples", "mean", "std dev", "CV", "local var", "min", "max", "peak-to-trough"},
		Rows: [][]string{
			describe("Cassandra", cSeries),
			describe("ScyllaDB", sSeries),
		},
	}

	spark := func(series []float64) string {
		if len(series) == 0 {
			return ""
		}
		mn, _ := stats.Min(series)
		mx, _ := stats.Max(series)
		glyphs := []rune("_.-=*#")
		var out []rune
		step := len(series) / 60
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(series); i += step {
			frac := 0.0
			if mx > mn {
				frac = (series[i] - mn) / (mx - mn)
			}
			idx := int(frac * float64(len(glyphs)-1))
			out = append(out, glyphs[idx])
		}
		return string(out)
	}
	timeline := Table{
		Title:  "Throughput sparklines (time left to right)",
		Header: []string{"engine", "series"},
		Rows: [][]string{
			{"Cassandra", spark(cSeries)},
			{"ScyllaDB", spark(sSeries)},
		},
	}

	return Report{
		ID:     "figure10",
		Title:  "Throughput stability: Cassandra vs ScyllaDB",
		Tables: []Table{t, timeline},
		Notes: []string{
			"paper: Cassandra's throughput is stable; ScyllaDB's fluctuates substantially (up to ~60% for ~40 seconds), making its throughput harder to predict",
			"shape under test: ScyllaDB's coefficient of variation and peak-to-trough swing exceed Cassandra's by a wide margin",
		},
	}, nil
}
