package ga

import (
	"errors"
	"reflect"
	"testing"

	"rafiki/internal/obs"
)

func batchTestProblem() ([]Bound, func([]float64) (float64, error)) {
	bounds := []Bound{
		{Min: -5, Max: 5},
		{Min: 0, Max: 10, Integer: true},
		{Min: -1, Max: 1},
	}
	fitness := func(g []float64) (float64, error) {
		return -(g[0]-1.5)*(g[0]-1.5) - (g[1]-4)*(g[1]-4) - g[2]*g[2], nil
	}
	return bounds, fitness
}

// TestBatchFitnessEquivalence is the rng-stream contract behind the
// batch path: scoring whole broods via BatchFitness must reproduce the
// individual-at-a-time run exactly — same winner, same history, same
// evaluation count.
func TestBatchFitnessEquivalence(t *testing.T) {
	bounds, fitness := batchTestProblem()
	opts := DefaultOptions()
	opts.Population = 20
	opts.Generations = 15
	opts.Seed = 321

	single, err := Run(Problem{Bounds: bounds, Fitness: fitness}, opts)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(Problem{
		Bounds: bounds,
		BatchFitness: func(genes [][]float64, out []float64) error {
			for i, g := range genes {
				f, err := fitness(g)
				if err != nil {
					return err
				}
				out[i] = f
			}
			return nil
		},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, batched) {
		t.Errorf("batched result differs from single-eval result:\n%+v\nvs\n%+v", batched, single)
	}
}

func TestBatchEvalCounters(t *testing.T) {
	bounds, fitness := batchTestProblem()
	opts := DefaultOptions()
	opts.Population = 10
	opts.Generations = 5
	opts.Seed = 7
	reg := obs.NewRegistry()
	opts.Obs = reg
	res, err := Run(Problem{Bounds: bounds, Fitness: fitness}, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ga.evaluations"]; got != uint64(res.Evaluations) {
		t.Errorf("ga.evaluations = %d, want %d", got, res.Evaluations)
	}
	// One batch for seeding plus, per generation, one champion-repair
	// batch and (except the last) one offspring batch.
	wantBatches := uint64(1 + opts.Generations + (opts.Generations - 1))
	if got := snap.Counters["ga.batch_evals"]; got != wantBatches {
		t.Errorf("ga.batch_evals = %d, want %d", got, wantBatches)
	}
}

func TestBatchFitnessErrorPropagates(t *testing.T) {
	bounds, _ := batchTestProblem()
	opts := DefaultOptions()
	opts.Population = 6
	opts.Generations = 3
	boom := errors.New("batch failed")
	if _, err := Run(Problem{
		Bounds:       bounds,
		BatchFitness: func([][]float64, []float64) error { return boom },
	}, opts); !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}
