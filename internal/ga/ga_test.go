package ga

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func sphereProblem(dim int) Problem {
	bounds := make([]Bound, dim)
	for i := range bounds {
		bounds[i] = Bound{Min: -10, Max: 10}
	}
	return Problem{
		Bounds: bounds,
		// Maximum 100 at the point (1, 2, 3, ...).
		Fitness: func(x []float64) (float64, error) {
			var s float64
			for i, v := range x {
				d := v - float64(i+1)
				s += d * d
			}
			return 100 - s, nil
		},
	}
}

func TestRunFindsSphereOptimum(t *testing.T) {
	res, err := Run(sphereProblem(3), Options{
		Population:    40,
		Generations:   60,
		CrossoverProb: 0.85,
		MutationProb:  0.2,
		MutationSigma: 0.1,
		Elite:         2,
		TournamentK:   3,
		PenaltyCoeff:  2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 99 {
		t.Errorf("best fitness %v, want >= 99", res.BestFitness)
	}
	want := []float64{1, 2, 3}
	for i, v := range res.Best {
		if math.Abs(v-want[i]) > 0.5 {
			t.Errorf("gene %d = %v, want ~%v", i, v, want[i])
		}
	}
}

func TestRunRespectsIntegerConstraints(t *testing.T) {
	p := Problem{
		Bounds: []Bound{
			{Min: 0, Max: 10, Integer: true},
			{Min: 0, Max: 1},
		},
		// Optimum at x0=7.4 unconstrained; integrality forces 7.
		Fitness: func(x []float64) (float64, error) {
			return -(x[0] - 7.4) * (x[0] - 7.4), nil
		},
	}
	res, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != math.Round(res.Best[0]) {
		t.Errorf("integer gene = %v, not integral", res.Best[0])
	}
	if res.Best[0] != 7 {
		t.Errorf("integer optimum = %v, want 7", res.Best[0])
	}
}

func TestRunKeepsBestWithinBounds(t *testing.T) {
	p := Problem{
		Bounds: []Bound{{Min: 0, Max: 5}},
		// Unbounded improvement toward +inf; the box must clip it.
		Fitness: func(x []float64) (float64, error) { return x[0], nil },
	}
	res, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] < 0 || res.Best[0] > 5 {
		t.Errorf("best %v escaped bounds", res.Best[0])
	}
	if res.Best[0] < 4.5 {
		t.Errorf("best %v should approach the boundary 5", res.Best[0])
	}
}

func TestRunEvaluationBudget(t *testing.T) {
	opts := DefaultOptions()
	res, err := Run(sphereProblem(5), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Population + (generations-1)*(population-elite) offspring +
	// one repaired evaluation per generation.
	upper := opts.Population*opts.Generations + opts.Generations + opts.Population
	if res.Evaluations > upper {
		t.Errorf("evaluations %d exceed budget %d", res.Evaluations, upper)
	}
	// Section 4.8: roughly 3.3k evaluations with default sizing.
	if res.Evaluations < 2500 || res.Evaluations > 4200 {
		t.Errorf("default sizing gives %d evaluations, want ~3350", res.Evaluations)
	}
}

func TestRunHistoryImproves(t *testing.T) {
	res, err := Run(sphereProblem(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != DefaultOptions().Generations {
		t.Fatalf("history length %d", len(res.History))
	}
	first := res.History[0]
	last := res.History[len(res.History)-1]
	if last <= first {
		t.Errorf("no improvement: first %v, last %v", first, last)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(sphereProblem(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sphereProblem(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness {
		t.Errorf("same seed diverged: %v vs %v", a.BestFitness, b.BestFitness)
	}
}

func TestRunValidation(t *testing.T) {
	valid := sphereProblem(2)
	tests := []struct {
		name string
		p    Problem
		opts Options
	}{
		{"no bounds", Problem{Fitness: valid.Fitness}, DefaultOptions()},
		{"nil fitness", Problem{Bounds: valid.Bounds}, DefaultOptions()},
		{"inverted bounds", Problem{Bounds: []Bound{{Min: 5, Max: 1}}, Fitness: valid.Fitness}, DefaultOptions()},
		{"tiny population", valid, Options{Population: 1, Generations: 5}},
		{"zero generations", valid, Options{Population: 10}},
		{"elite too large", valid, Options{Population: 10, Generations: 5, Elite: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.p, tt.opts); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunPropagatesFitnessError(t *testing.T) {
	errBoom := errors.New("boom")
	p := Problem{
		Bounds:  []Bound{{Min: 0, Max: 1}},
		Fitness: func([]float64) (float64, error) { return 0, errBoom },
	}
	if _, err := Run(p, DefaultOptions()); !errors.Is(err, errBoom) {
		t.Errorf("want fitness error, got %v", err)
	}
}

func TestCrossoverInterpolates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := []float64{0, 10}
	b := []float64{10, 20}
	for i := 0; i < 100; i++ {
		c := crossover(rng, a, b)
		if c[0] < 0 || c[0] > 10 || c[1] < 10 || c[1] > 20 {
			t.Fatalf("crossover escaped the parents' hull: %v", c)
		}
	}
}

func TestViolation(t *testing.T) {
	bounds := []Bound{{Min: 0, Max: 10, Integer: true}, {Min: 0, Max: 1}}
	tests := []struct {
		name  string
		genes []float64
		want  float64
	}{
		{"feasible", []float64{5, 0.5}, 0},
		{"non-integer", []float64{5.5, 0.5}, 0.5},
		{"below min", []float64{-1, 0.5}, 0.1 + 0}, // 1/10 range, integral
		{"above max", []float64{5, 1.5}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := violation(tt.genes, bounds); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("violation = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRepair(t *testing.T) {
	bounds := []Bound{{Min: 2, Max: 10, Integer: true}, {Min: 0, Max: 1}}
	got := Repair([]float64{1.2, 1.7}, bounds)
	if got[0] != 2 {
		t.Errorf("repaired integer = %v, want 2", got[0])
	}
	if got[1] != 1 {
		t.Errorf("repaired float = %v, want 1", got[1])
	}
	// Rounding happens before clamping: 10.4 -> 10 (feasible).
	got = Repair([]float64{10.4, 0.5}, bounds)
	if got[0] != 10 {
		t.Errorf("repair(10.4) = %v, want 10", got[0])
	}
}

// Property: Repair output always has zero violation.
func TestRepairProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := []Bound{
		{Min: -3, Max: 7, Integer: true},
		{Min: 0.5, Max: 0.9},
		{Min: 0, Max: 0, Integer: true},
	}
	for i := 0; i < 1000; i++ {
		genes := []float64{
			rng.NormFloat64() * 20,
			rng.NormFloat64() * 20,
			rng.NormFloat64() * 20,
		}
		r := Repair(genes, bounds)
		if v := violation(r, bounds); v != 0 {
			t.Fatalf("Repair(%v) = %v still violates by %v", genes, r, v)
		}
	}
}

func TestRunMultimodalAvoidsLocalMaxima(t *testing.T) {
	// A deceptive landscape: a broad local hill at x=-5 (height 50) and
	// a narrow global peak at x=8 (height 100). Greedy hill-climbing
	// from most starts finds the broad hill; the GA should find the
	// narrow peak — the paper's motivation for a stochastic searcher.
	p := Problem{
		Bounds: []Bound{{Min: -10, Max: 10}},
		Fitness: func(x []float64) (float64, error) {
			broad := 50 * math.Exp(-(x[0]+5)*(x[0]+5)/20)
			narrow := 100 * math.Exp(-(x[0]-8)*(x[0]-8)/0.5)
			return broad + narrow, nil
		},
	}
	res, err := Run(p, Options{
		Population:    60,
		Generations:   80,
		CrossoverProb: 0.85,
		MutationProb:  0.25,
		MutationSigma: 0.15,
		Elite:         2,
		TournamentK:   3,
		PenaltyCoeff:  2,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best[0]-8) > 0.5 {
		t.Errorf("GA stuck at %v, want the global peak near 8", res.Best[0])
	}
}
