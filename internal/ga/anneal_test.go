package ga

import (
	"math"
	"testing"
)

func TestAnnealFindsSphereOptimum(t *testing.T) {
	res, err := Anneal(sphereProblem(3), DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 98 {
		t.Errorf("best fitness %v, want >= 98", res.BestFitness)
	}
	want := []float64{1, 2, 3}
	for i, v := range res.Best {
		if math.Abs(v-want[i]) > 1 {
			t.Errorf("gene %d = %v, want ~%v", i, v, want[i])
		}
	}
}

func TestAnnealRespectsConstraints(t *testing.T) {
	p := Problem{
		Bounds: []Bound{{Min: 0, Max: 10, Integer: true}},
		Fitness: func(x []float64) (float64, error) {
			return -(x[0] - 6.3) * (x[0] - 6.3), nil
		},
	}
	res, err := Anneal(p, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 6 {
		t.Errorf("integer optimum = %v, want 6", res.Best[0])
	}
}

func TestAnnealValidation(t *testing.T) {
	valid := sphereProblem(2)
	tests := []struct {
		name string
		p    Problem
		opts AnnealOptions
	}{
		{"no bounds", Problem{Fitness: valid.Fitness}, DefaultAnnealOptions()},
		{"nil fitness", Problem{Bounds: valid.Bounds}, DefaultAnnealOptions()},
		{"zero steps", valid, AnnealOptions{TempInit: 1, TempFinal: 0.1}},
		{"inverted temps", valid, AnnealOptions{Steps: 10, TempInit: 0.1, TempFinal: 1}},
		{"zero temp", valid, AnnealOptions{Steps: 10, TempInit: 0, TempFinal: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Anneal(tt.p, tt.opts); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestAnnealDeterminism(t *testing.T) {
	a, err := Anneal(sphereProblem(3), DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(sphereProblem(3), DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness {
		t.Errorf("same seed diverged: %v vs %v", a.BestFitness, b.BestFitness)
	}
}

func TestAnnealEvaluationBudget(t *testing.T) {
	opts := DefaultAnnealOptions()
	res, err := Anneal(sphereProblem(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Proposals plus repaired-champion evaluations: at most ~2x steps.
	if res.Evaluations > 2*opts.Steps+10 {
		t.Errorf("evaluations %d exceed budget", res.Evaluations)
	}
}
