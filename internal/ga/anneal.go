package ga

import (
	"fmt"
	"math"
	"math/rand"
)

// AnnealOptions tunes the simulated-annealing searcher, an alternative
// stochastic optimizer over the same bounded problems the GA solves.
// It exists for the search-strategy ablation: the paper chose a GA for
// robustness to local maxima; annealing is the classic single-chain
// competitor.
type AnnealOptions struct {
	// Steps is the number of proposal evaluations.
	Steps int
	// TempInit and TempFinal bound the exponential cooling schedule, in
	// units of the fitness function.
	TempInit, TempFinal float64
	// StepSigma is the proposal step as a fraction of each gene range.
	StepSigma float64
	// PenaltyCoeff scales constraint violations, as in the GA.
	PenaltyCoeff float64
	// Seed drives the chain.
	Seed int64
}

// DefaultAnnealOptions roughly matches the GA's evaluation budget.
func DefaultAnnealOptions() AnnealOptions {
	return AnnealOptions{
		Steps:        3300,
		TempInit:     0.1,
		TempFinal:    1e-4,
		StepSigma:    0.15,
		PenaltyCoeff: 2.0,
	}
}

// Anneal maximizes p.Fitness with simulated annealing and returns the
// best feasible (repaired) candidate found.
func Anneal(p Problem, opts AnnealOptions) (Result, error) {
	if len(p.Bounds) == 0 {
		return Result{}, fmt.Errorf("ga: anneal: no bounds")
	}
	if p.Fitness == nil {
		return Result{}, fmt.Errorf("ga: anneal: nil fitness function")
	}
	if opts.Steps < 1 {
		return Result{}, fmt.Errorf("ga: anneal: steps must be >= 1, got %d", opts.Steps)
	}
	if opts.TempInit <= 0 || opts.TempFinal <= 0 || opts.TempFinal > opts.TempInit {
		return Result{}, fmt.Errorf("ga: anneal: invalid temperature schedule [%v, %v]", opts.TempInit, opts.TempFinal)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var res Result

	score := func(genes []float64) (raw, s float64, err error) {
		raw, err = p.Fitness(genes)
		if err != nil {
			return 0, 0, err
		}
		v := violation(genes, p.Bounds)
		return raw, raw - opts.PenaltyCoeff*v*(1+math.Abs(raw)), nil
	}

	cur := make([]float64, len(p.Bounds))
	for i, b := range p.Bounds {
		cur[i] = b.Min + rng.Float64()*(b.Max-b.Min)
	}
	_, curScore, err := score(cur)
	if err != nil {
		return Result{}, err
	}
	res.Evaluations++

	bestRepaired := Repair(cur, p.Bounds)
	bestFitness, err := p.Fitness(bestRepaired)
	if err != nil {
		return Result{}, err
	}
	res.Evaluations++

	// The score scale normalizes temperatures: fitness units vary by
	// problem, so temperatures are relative to the first score's
	// magnitude.
	scale := math.Abs(curScore)
	if scale < 1 {
		scale = 1
	}
	cooling := math.Pow(opts.TempFinal/opts.TempInit, 1/float64(opts.Steps))
	temp := opts.TempInit * scale

	proposal := make([]float64, len(cur))
	for step := 0; step < opts.Steps; step++ {
		copy(proposal, cur)
		// Perturb one gene per step; occasionally reset it to explore.
		i := rng.Intn(len(p.Bounds))
		b := p.Bounds[i]
		span := b.Max - b.Min
		if span > 0 {
			if rng.Float64() < 0.1 {
				proposal[i] = b.Min + rng.Float64()*span
			} else {
				proposal[i] += rng.NormFloat64() * opts.StepSigma * span
			}
		}
		_, propScore, err := score(proposal)
		if err != nil {
			return Result{}, err
		}
		res.Evaluations++

		if propScore >= curScore || rng.Float64() < math.Exp((propScore-curScore)/temp) {
			copy(cur, proposal)
			curScore = propScore

			repaired := Repair(cur, p.Bounds)
			rf, err := p.Fitness(repaired)
			if err != nil {
				return Result{}, err
			}
			res.Evaluations++
			if rf > bestFitness {
				bestFitness = rf
				bestRepaired = repaired
			}
		}
		res.History = append(res.History, curScore)
		temp *= cooling
	}

	res.Best = bestRepaired
	res.BestFitness = bestFitness
	return res, nil
}
