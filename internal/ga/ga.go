// Package ga implements the real-coded genetic algorithm Rafiki uses to
// search the configuration space over the trained surrogate (Section
// 3.7.2): uniform-random initialization within bounds, tournament
// selection with elitism, the paper's random-weighted-average
// interpolating crossover, gaussian mutation, and Deb-style penalty
// handling of constraint violations (bounds and integrality).
package ga

import (
	"fmt"
	"math"
	"math/rand"

	"rafiki/internal/obs"
)

// Bound constrains one gene.
type Bound struct {
	// Min and Max are the inclusive limits.
	Min, Max float64
	// Integer marks genes that must take integral values (the paper's
	// integer and categorical parameters).
	Integer bool
}

// Problem is a maximization problem over a bounded real vector.
type Problem struct {
	// Bounds defines the search box, one entry per gene.
	Bounds []Bound
	// Fitness scores a candidate; higher is better. It is called on
	// raw (possibly infeasible) vectors; the GA applies penalties
	// separately.
	Fitness func([]float64) (float64, error)
	// BatchFitness, when non-nil, scores many candidates at once into
	// out (same length as genes) and is preferred over Fitness for
	// every evaluation the GA makes — seeding, offspring, and champion
	// repair alike. A surrogate-backed problem implements it with one
	// ensemble batch-prediction call, which amortizes normalization and
	// lets the model fan the rows across cores. out[i] must depend only
	// on genes[i], so results are order- and batch-size-independent.
	BatchFitness func(genes [][]float64, out []float64) error
}

// Options tunes the search.
type Options struct {
	// Population and Generations size the search. The paper's run uses
	// roughly 3,350 surrogate evaluations per workload.
	Population, Generations int
	// CrossoverProb is the chance a child is produced by crossover
	// rather than cloned from a parent.
	CrossoverProb float64
	// MutationProb is the per-gene mutation probability and
	// MutationSigma the gaussian step as a fraction of the gene range.
	MutationProb, MutationSigma float64
	// Elite is the number of top candidates copied unchanged.
	Elite int
	// TournamentK is the tournament selection size.
	TournamentK int
	// PenaltyCoeff scales the constraint-violation penalty, normalized
	// by the observed fitness spread (Deb 2000).
	PenaltyCoeff float64
	// Seed drives the search.
	Seed int64
	// Obs, when non-nil, receives an evaluation counter and one span
	// per generation on the cumulative-evaluations axis.
	Obs *obs.Registry
}

// DefaultOptions sizes the search to about 3.5k evaluations, matching
// Section 4.8.
func DefaultOptions() Options {
	return Options{
		Population:    50,
		Generations:   66,
		CrossoverProb: 0.85,
		MutationProb:  0.15,
		MutationSigma: 0.12,
		Elite:         2,
		TournamentK:   3,
		PenaltyCoeff:  2.0,
	}
}

// Result reports the best solution found.
type Result struct {
	// Best is the best feasible (repaired) candidate.
	Best []float64
	// BestFitness is the fitness of Best.
	BestFitness float64
	// Evaluations counts fitness-function calls.
	Evaluations int
	// History is the best raw score per generation.
	History []float64
}

// Run executes the genetic algorithm.
func Run(p Problem, opts Options) (Result, error) {
	if len(p.Bounds) == 0 {
		return Result{}, fmt.Errorf("ga: no bounds")
	}
	if p.Fitness == nil && p.BatchFitness == nil {
		return Result{}, fmt.Errorf("ga: nil fitness function")
	}
	for i, b := range p.Bounds {
		if b.Max < b.Min {
			return Result{}, fmt.Errorf("ga: gene %d has inverted bounds [%v, %v]", i, b.Min, b.Max)
		}
	}
	if opts.Population < 2 {
		return Result{}, fmt.Errorf("ga: population must be >= 2, got %d", opts.Population)
	}
	if opts.Generations < 1 {
		return Result{}, fmt.Errorf("ga: generations must be >= 1, got %d", opts.Generations)
	}
	if opts.Elite < 0 || opts.Elite >= opts.Population {
		return Result{}, fmt.Errorf("ga: elite %d out of range", opts.Elite)
	}
	if opts.TournamentK < 1 {
		opts.TournamentK = 2
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	res := Result{}
	evals := opts.Obs.Counter("ga.evaluations")
	batchEvals := opts.Obs.Counter("ga.batch_evals")

	// score = raw fitness minus scaled violation (Deb-style penalty: a
	// candidate violating constraints can still carry information, but
	// feasible candidates dominate as the penalty grows with spread).
	type indiv struct {
		genes []float64
		score float64
		raw   float64
	}

	// All evaluations route through evalBatch: the whole seeding
	// population and each generation's offspring are scored with one
	// BatchFitness call (or a Fitness loop when the problem has no batch
	// path). Fitness functions consume no GA randomness, so hoisting
	// gene generation ahead of evaluation leaves the rng stream — and
	// therefore every result — identical to individual-at-a-time
	// evaluation (TestBatchFitnessEquivalence pins this).
	raws := make([]float64, opts.Population)
	scores := make([]float64, opts.Population)
	evalBatch := func(genes [][]float64, raws, scores []float64) error {
		if p.BatchFitness != nil {
			if err := p.BatchFitness(genes, raws); err != nil {
				return err
			}
		} else {
			for i, g := range genes {
				r, err := p.Fitness(g)
				if err != nil {
					return err
				}
				raws[i] = r
			}
		}
		for i, g := range genes {
			v := violation(g, p.Bounds)
			scores[i] = raws[i] - opts.PenaltyCoeff*v*(1+math.Abs(raws[i]))
		}
		res.Evaluations += len(genes)
		evals.Add(uint64(len(genes)))
		batchEvals.Inc()
		return nil
	}

	pop := make([]indiv, opts.Population)
	genesBuf := make([][]float64, opts.Population)
	for i := range pop {
		genes := make([]float64, len(p.Bounds))
		for j, b := range p.Bounds {
			genes[j] = b.Min + rng.Float64()*(b.Max-b.Min)
		}
		genesBuf[i] = genes
	}
	if err := evalBatch(genesBuf, raws, scores); err != nil {
		return Result{}, err
	}
	for i := range pop {
		pop[i] = indiv{genes: genesBuf[i], score: scores[i], raw: raws[i]}
	}

	var bestRepaired []float64
	bestRepairedFitness := math.Inf(-1)

	tournament := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for k := 1; k < opts.TournamentK; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.score > best.score {
				best = c
			}
		}
		return best
	}

	// recordGen traces one finished generation as a span on the
	// cumulative-evaluations axis, the GA's natural work clock.
	recordGen := func(gen, startEvals int, bestRaw float64) {
		if opts.Obs == nil {
			return
		}
		opts.Obs.Record(obs.Span{
			Name:  "ga.generation",
			Start: float64(startEvals),
			End:   float64(res.Evaluations),
			Unit:  "evals",
			Attrs: map[string]float64{"gen": float64(gen), "best": bestRaw},
		})
	}

	for gen := 0; gen < opts.Generations; gen++ {
		genStartEvals := res.Evaluations
		// Track the generation's champion, repaired to feasibility.
		genBest := pop[0]
		for _, ind := range pop[1:] {
			if ind.score > genBest.score {
				genBest = ind
			}
		}
		res.History = append(res.History, genBest.raw)

		repaired := Repair(genBest.genes, p.Bounds)
		genesBuf[0] = repaired
		if err := evalBatch(genesBuf[:1], raws[:1], scores[:1]); err != nil {
			return Result{}, err
		}
		rf := raws[0]
		if rf > bestRepairedFitness {
			bestRepairedFitness = rf
			bestRepaired = repaired
		}

		if gen == opts.Generations-1 {
			recordGen(gen, genStartEvals, genBest.raw)
			break
		}

		next := make([]indiv, 0, opts.Population)
		// Elitism: carry the top candidates by score.
		order := make([]int, len(pop))
		for i := range order {
			order[i] = i
		}
		for i := 0; i < opts.Elite; i++ {
			bi := i
			for j := i + 1; j < len(order); j++ {
				if pop[order[j]].score > pop[order[bi]].score {
					bi = j
				}
			}
			order[i], order[bi] = order[bi], order[i]
			next = append(next, pop[order[i]])
		}

		// Generate every offspring first (consuming the rng in the same
		// order as one-at-a-time evaluation would), then score the whole
		// brood with a single batch call.
		offspring := genesBuf[:0]
		for n := len(next); n+len(offspring) < opts.Population; {
			a := tournament()
			child := append([]float64(nil), a.genes...)
			if rng.Float64() < opts.CrossoverProb {
				b := tournament()
				child = crossover(rng, a.genes, b.genes)
			}
			mutate(rng, child, p.Bounds, opts.MutationProb, opts.MutationSigma)
			offspring = append(offspring, child)
		}
		if err := evalBatch(offspring, raws[:len(offspring)], scores[:len(offspring)]); err != nil {
			return Result{}, err
		}
		for i, child := range offspring {
			next = append(next, indiv{genes: child, score: scores[i], raw: raws[i]})
		}
		pop = next
		recordGen(gen, genStartEvals, genBest.raw)
	}

	res.Best = bestRepaired
	res.BestFitness = bestRepairedFitness
	return res, nil
}

// crossover is the paper's interpolating operator: each child gene is a
// random-weighted average of the parents', keeping children inside the
// population's convex hull (interpolation rather than extrapolation).
// (Section 3.7.2 prints an extra /2 in its example; taken literally
// that would collapse the population toward the origin, so the standard
// weighted-average form is used.)
func crossover(rng *rand.Rand, a, b []float64) []float64 {
	child := make([]float64, len(a))
	for i := range child {
		r := rng.Float64()
		child[i] = r*a[i] + (1-r)*b[i]
	}
	return child
}

// mutate perturbs genes in place. Most mutations are gaussian steps
// scaled to the gene range; a fraction are uniform resets, which keep
// categorical/integer genes able to jump between basins after the
// interpolating crossover has contracted the population's hull.
func mutate(rng *rand.Rand, genes []float64, bounds []Bound, prob, sigma float64) {
	const resetFraction = 0.3
	for i, b := range bounds {
		if rng.Float64() >= prob {
			continue
		}
		span := b.Max - b.Min
		if span == 0 {
			continue
		}
		if rng.Float64() < resetFraction {
			genes[i] = b.Min + rng.Float64()*span
			continue
		}
		genes[i] += rng.NormFloat64() * sigma * span
	}
}

// violation measures how far genes sit outside the feasible set: bound
// overflow (normalized by range) plus integrality gaps.
func violation(genes []float64, bounds []Bound) float64 {
	var v float64
	for i, b := range bounds {
		g := genes[i]
		span := b.Max - b.Min
		if span <= 0 {
			span = 1
		}
		if g < b.Min {
			v += (b.Min - g) / span
		}
		if g > b.Max {
			v += (g - b.Max) / span
		}
		if b.Integer {
			v += math.Abs(g - math.Round(g))
		}
	}
	return v
}

// Repair clamps genes into bounds and rounds integer genes, producing
// the feasible configuration actually applied to the datastore.
func Repair(genes []float64, bounds []Bound) []float64 {
	out := make([]float64, len(genes))
	for i, b := range bounds {
		g := genes[i]
		if b.Integer {
			g = math.Round(g)
		}
		if g < b.Min {
			g = b.Min
		}
		if g > b.Max {
			g = b.Max
		}
		out[i] = g
	}
	return out
}
