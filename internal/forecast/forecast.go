// Package forecast implements workload prediction, the future-work item
// of Section 6 ("we are also developing a prediction model for the
// workloads"): given the observed read-ratio window series, predict the
// next window so the controller can re-tune proactively instead of
// reacting one window late.
//
// Two predictors are provided: an exponentially-weighted moving average
// (the baseline) and a discretized Markov chain that learns the
// regime-switching structure of MG-RAST-like traces online.
package forecast

import "fmt"

// Forecaster consumes a read-ratio series one observation at a time and
// predicts the next value.
type Forecaster interface {
	// Observe feeds one window's read ratio.
	Observe(rr float64)
	// Predict returns the expected next read ratio. Before any
	// observation it returns a neutral 0.5.
	Predict() float64
}

// Persistence predicts "same as last window" — the implicit model of a
// reactive controller, used as the comparison baseline.
type Persistence struct {
	last float64
	seen bool
}

var _ Forecaster = (*Persistence)(nil)

// Observe implements Forecaster.
func (p *Persistence) Observe(rr float64) {
	p.last = rr
	p.seen = true
}

// Predict implements Forecaster.
func (p *Persistence) Predict() float64 {
	if !p.seen {
		return 0.5
	}
	return p.last
}

// EWMA is an exponentially-weighted moving average predictor.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]; larger reacts faster.
	alpha float64
	value float64
	seen  bool
}

var _ Forecaster = (*EWMA)(nil)

// NewEWMA builds an EWMA with smoothing factor alpha.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("forecast: alpha %v out of (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe implements Forecaster.
func (e *EWMA) Observe(rr float64) {
	if !e.seen {
		e.value = rr
		e.seen = true
		return
	}
	e.value = e.alpha*rr + (1-e.alpha)*e.value
}

// Predict implements Forecaster.
func (e *EWMA) Predict() float64 {
	if !e.seen {
		return 0.5
	}
	return e.value
}

// Markov discretizes the read ratio into bins and learns the bin
// transition matrix online (with add-one smoothing); the prediction is
// the expected next-bin center given the current bin. On traces with
// regime structure it learns, e.g., that write bursts are short and
// revert to read-heavy.
type Markov struct {
	bins   int
	counts [][]float64
	cur    int
	seen   bool
}

var _ Forecaster = (*Markov)(nil)

// NewMarkov builds a predictor with the given bin count (>= 2).
func NewMarkov(bins int) (*Markov, error) {
	if bins < 2 {
		return nil, fmt.Errorf("forecast: need >= 2 bins, got %d", bins)
	}
	counts := make([][]float64, bins)
	for i := range counts {
		counts[i] = make([]float64, bins)
		for j := range counts[i] {
			counts[i][j] = 0.5 // smoothing prior
		}
	}
	return &Markov{bins: bins, counts: counts}, nil
}

func (m *Markov) bin(rr float64) int {
	if rr < 0 {
		rr = 0
	}
	if rr > 1 {
		rr = 1
	}
	b := int(rr * float64(m.bins))
	if b == m.bins {
		b--
	}
	return b
}

func (m *Markov) center(bin int) float64 {
	return (float64(bin) + 0.5) / float64(m.bins)
}

// Observe implements Forecaster.
func (m *Markov) Observe(rr float64) {
	b := m.bin(rr)
	if m.seen {
		m.counts[m.cur][b]++
	}
	m.cur = b
	m.seen = true
}

// Predict implements Forecaster.
func (m *Markov) Predict() float64 {
	if !m.seen {
		return 0.5
	}
	row := m.counts[m.cur]
	var total, acc float64
	for j, c := range row {
		total += c
		acc += c * m.center(j)
	}
	return acc / total
}

// Evaluate replays a series through a fresh run of f and returns the
// mean squared one-step-ahead prediction error.
func Evaluate(f Forecaster, series []float64) (float64, error) {
	if len(series) < 2 {
		return 0, fmt.Errorf("forecast: need at least 2 observations, got %d", len(series))
	}
	var sse float64
	var n int
	for i, rr := range series {
		if i > 0 {
			d := f.Predict() - rr
			sse += d * d
			n++
		}
		f.Observe(rr)
	}
	return sse / float64(n), nil
}
