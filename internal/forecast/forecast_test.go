package forecast

import (
	"math"
	"testing"

	"rafiki/internal/workload"
)

func TestPersistence(t *testing.T) {
	var p Persistence
	if got := p.Predict(); got != 0.5 {
		t.Errorf("cold Predict = %v, want 0.5", got)
	}
	p.Observe(0.9)
	if got := p.Predict(); got != 0.9 {
		t.Errorf("Predict = %v, want 0.9", got)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.5} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("alpha %v should error", alpha)
		}
	}
}

func TestEWMASmoothing(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Predict(); got != 0.5 {
		t.Errorf("cold Predict = %v", got)
	}
	e.Observe(1)
	e.Observe(0)
	if got := e.Predict(); got != 0.5 {
		t.Errorf("EWMA(1, 0) = %v, want 0.5", got)
	}
	e.Observe(0)
	if got := e.Predict(); got != 0.25 {
		t.Errorf("EWMA = %v, want 0.25", got)
	}
}

func TestMarkovValidation(t *testing.T) {
	if _, err := NewMarkov(1); err == nil {
		t.Error("1 bin should error")
	}
}

func TestMarkovLearnsAlternation(t *testing.T) {
	// A strictly alternating series 0.9, 0.1, 0.9, ... — the Markov
	// model must learn to predict the flip; persistence cannot.
	m, err := NewMarkov(5)
	if err != nil {
		t.Fatal(err)
	}
	series := make([]float64, 200)
	for i := range series {
		if i%2 == 0 {
			series[i] = 0.9
		} else {
			series[i] = 0.1
		}
	}
	mseM, err := Evaluate(m, series)
	if err != nil {
		t.Fatal(err)
	}
	mseP, err := Evaluate(&Persistence{}, series)
	if err != nil {
		t.Fatal(err)
	}
	if mseM >= mseP/2 {
		t.Errorf("Markov MSE %v should crush persistence %v on alternation", mseM, mseP)
	}
}

func TestMarkovBinEdges(t *testing.T) {
	m, err := NewMarkov(4)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range observations clamp instead of panicking.
	m.Observe(-0.5)
	m.Observe(1.5)
	got := m.Predict()
	if got < 0 || got > 1 {
		t.Errorf("Predict = %v out of [0,1]", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(&Persistence{}, []float64{0.5}); err == nil {
		t.Error("short series should error")
	}
}

func TestMarkovOnSynthesizedTrace(t *testing.T) {
	// On the MG-RAST-like regime-switching trace, the learned Markov
	// model should at least match EWMA and not be far behind
	// persistence in one-step MSE.
	trace, err := workload.SynthesizeTrace(workload.DefaultTraceSpec())
	if err != nil {
		t.Fatal(err)
	}
	series := make([]float64, len(trace))
	for i, w := range trace {
		series[i] = w.ReadRatio
	}
	m, err := NewMarkov(5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEWMA(0.6)
	if err != nil {
		t.Fatal(err)
	}
	mseMarkov, err := Evaluate(m, series)
	if err != nil {
		t.Fatal(err)
	}
	mseEWMA, err := Evaluate(e, series)
	if err != nil {
		t.Fatal(err)
	}
	msePersist, err := Evaluate(&Persistence{}, series)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MSE: markov=%.4f ewma=%.4f persistence=%.4f", mseMarkov, mseEWMA, msePersist)
	if mseMarkov > mseEWMA*1.05 {
		t.Errorf("Markov (%.4f) should not lose to EWMA (%.4f)", mseMarkov, mseEWMA)
	}
	if math.IsNaN(mseMarkov) || mseMarkov <= 0 {
		t.Errorf("implausible MSE %v", mseMarkov)
	}
}
