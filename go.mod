module rafiki

go 1.22
