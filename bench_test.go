package rafiki_test

// One benchmark per table and figure of the paper's evaluation section,
// plus micro-benchmarks of the load-bearing components. Each experiment
// benchmark regenerates the corresponding artifact and prints it once;
// expensive offline state (the collected dataset and trained surrogate)
// is shared across benchmarks through lazily-built pipelines.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rafiki"
	"rafiki/internal/anova"
	"rafiki/internal/bench"
	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
	"rafiki/internal/nosql"
	"rafiki/internal/workload"
)

// benchEnv sizes experiment benchmarks; smaller samples than the
// experiment CLI keep `go test -bench=.` in the minutes range.
func benchEnv() bench.Env {
	env := bench.DefaultEnv()
	env.SampleOps = 50_000
	return env
}

func benchPipelineOptions() bench.PipelineOptions {
	opts := bench.DefaultPipelineOptions()
	opts.Env = benchEnv()
	opts.Model.BR.Epochs = 40
	return opts
}

var (
	cassOnce     sync.Once
	cassPipeline *bench.Pipeline
	cassErr      error

	scyllaOnce     sync.Once
	scyllaPipeline *bench.Pipeline
	scyllaErr      error
)

func cassandraPipeline(b *testing.B) *bench.Pipeline {
	b.Helper()
	cassOnce.Do(func() {
		cassPipeline, cassErr = bench.NewCassandraPipeline(benchPipelineOptions())
	})
	if cassErr != nil {
		b.Fatal(cassErr)
	}
	return cassPipeline
}

func scyllaPipelineFor(b *testing.B) *bench.Pipeline {
	b.Helper()
	scyllaOnce.Do(func() {
		scyllaPipeline, scyllaErr = bench.NewScyllaPipeline(benchPipelineOptions())
	})
	if scyllaErr != nil {
		b.Fatal(scyllaErr)
	}
	return scyllaPipeline
}

func runReport(b *testing.B, f func() (bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(rep.Render())
		}
	}
}

// --- Paper artifacts -------------------------------------------------

func BenchmarkFigure3MGRastTrace(b *testing.B) {
	runReport(b, func() (bench.Report, error) { return bench.Figure3(benchEnv()) })
}

func BenchmarkFigure4DefaultVsRafiki(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Figure4(p) })
}

func BenchmarkFigure5ANOVA(b *testing.B) {
	runReport(b, func() (bench.Report, error) { return bench.Figure5(benchEnv()) })
}

func BenchmarkFigure6Interdependency(b *testing.B) {
	runReport(b, func() (bench.Report, error) { return bench.Figure6(benchEnv()) })
}

func BenchmarkFigure7LearningCurve(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Figure7(p) })
}

func BenchmarkFigure8UnseenConfigHistogram(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Figure8(p) })
}

func BenchmarkFigure9UnseenWorkloadHistogram(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Figure9(p) })
}

func BenchmarkFigure10ThroughputVariance(b *testing.B) {
	runReport(b, func() (bench.Report, error) { return bench.Figure10(benchEnv()) })
}

func BenchmarkTable1MaxDefaultMin(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Table1(p) })
}

func BenchmarkTable2PredictionModel(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Table2(p) })
}

func BenchmarkTable3MultiServer(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.Table3(p) })
}

func BenchmarkTable4ScyllaDB(b *testing.B) {
	p := scyllaPipelineFor(b)
	runReport(b, func() (bench.Report, error) { return bench.Table4(p) })
}

func BenchmarkTable2ScyllaPrediction(b *testing.B) {
	// Section 4.10 / abstract: ScyllaDB predicts at 6.9-7.8% error,
	// worse than Cassandra, because its auto-tuner injects variance.
	p := scyllaPipelineFor(b)
	runReport(b, func() (bench.Report, error) { return bench.Table2(p) })
}

func BenchmarkSearchSpeedup(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.SearchSpeed(p) })
}

func BenchmarkConfigSensitivity(b *testing.B) {
	// Section 1's headline sensitivity numbers come from Table 1's
	// spread; the ablation adds the greedy/random baselines.
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.AblationSearch(p) })
}

func BenchmarkAblationTrainer(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.AblationTrainer(p) })
}

func BenchmarkAblationModel(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.AblationModel(p) })
}

func BenchmarkAblationSurrogateSearch(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.AblationSurrogateSearch(p) })
}

func BenchmarkCrossWorkloadPenalty(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.CrossWorkloadPenalty(p) })
}

func BenchmarkDynamicTrace(b *testing.B) {
	p := cassandraPipeline(b)
	runReport(b, func() (bench.Report, error) { return bench.DynamicTrace(p) })
}

// --- Micro-benchmarks ------------------------------------------------

func BenchmarkEngineWrite(b *testing.B) {
	eng, err := rafiki.NewEngine(rafiki.EngineOptions{Space: rafiki.CassandraSpace(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	keySpace := uint64(eng.KeySpace())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Write(uint64(i) % keySpace)
	}
}

func BenchmarkEngineRead(b *testing.B) {
	eng, err := rafiki.NewEngine(rafiki.EngineOptions{Space: rafiki.CassandraSpace(), Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	eng.Preload(3)
	keySpace := uint64(eng.KeySpace())
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Read(rng.Uint64() % keySpace)
	}
}

func BenchmarkEngineMixedWorkload(b *testing.B) {
	eng, err := nosql.New(nosql.Options{Space: config.Cassandra(), Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	eng.Preload(3)
	gen, err := workload.NewKeyGenerator(eng.KeySpace(), float64(eng.KeySpace())/2, 5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := gen.Next()
		if rng.Float64() < 0.5 {
			eng.Read(key)
		} else {
			eng.Write(key)
		}
	}
}

func BenchmarkKeyGenerator(b *testing.B) {
	gen, err := workload.NewKeyGenerator(1_000_000, 10_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

func BenchmarkSurrogatePredict(b *testing.B) {
	// Section 4.8 prices one surrogate call at ~45us on 2017 hardware;
	// this measures ours.
	p := cassandraPipeline(b)
	cfg := p.Space.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Surrogate.Predict(core.RR(0.7), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGASearch(b *testing.B) {
	// The paper's full online search: ~1.8s with ~3,350 evaluations.
	p := cassandraPipeline(b)
	opts := ga.DefaultOptions()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := p.Surrogate.Optimize(core.RR(0.7), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBRSingleNet(b *testing.B) {
	p := cassandraPipeline(b)
	xs, ys, err := p.Dataset.Features(p.Space)
	if err != nil {
		b.Fatal(err)
	}
	cfg := nn.ModelConfig{
		Hidden:       []int{14, 4},
		EnsembleSize: 1,
		Trainer:      nn.TrainerBR,
		BR:           nn.BROptions{Epochs: 40, MuInit: 0.005, MuInc: 10, MuDec: 0.1, MuMax: 1e10, MinGrad: 1e-7},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := nn.Fit(xs, ys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkANOVARank(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	sweeps := make(map[string][][]float64, 25)
	for p := 0; p < 25; p++ {
		groups := make([][]float64, 4)
		for g := range groups {
			groups[g] = []float64{50000 + rng.Float64()*20000}
		}
		sweeps[fmt.Sprintf("param_%02d", p)] = groups
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anova.Rank(sweeps); err != nil {
			b.Fatal(err)
		}
	}
}
