// Command pipelinebench measures the tuning pipeline's serial-vs-
// parallel wall time and allocation volume stage by stage (data
// collection, ensemble training, surrogate-backed GA search) and
// writes the result as JSON. It also re-checks, on every run, that the
// parallel pipeline is observationally identical to the serial one:
// byte-identical trained models and identical GA recommendations.
//
// Usage:
//
//	pipelinebench [-out BENCH_pipeline.json] [-ops N] [-seed N] [-workers N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"time"

	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
	"rafiki/internal/par"

	"rafiki/internal/bench"
)

// stageResult is one stage's serial-vs-parallel measurement.
type stageResult struct {
	Name            string  `json:"name"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	SerialAllocs    uint64  `json:"serial_allocs"`
	ParallelAllocs  uint64  `json:"parallel_allocs"`
}

// report is the file this command writes.
type report struct {
	NumCPU     int   `json:"num_cpu"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	Workers    int   `json:"workers"`
	SampleOps  int   `json:"sample_ops"`
	Seed       int64 `json:"seed"`
	// ParallelComparable is false when GOMAXPROCS is 1: the "parallel"
	// runs then share one CPU, so their wall times measure scheduling
	// overhead, not speedup — the speedup fields are reported for
	// completeness but are not meaningful as a parallelism measurement.
	ParallelComparable bool          `json:"parallel_comparable"`
	Stages             []stageResult `json:"stages"`
	Pipeline           stageResult   `json:"pipeline"`
	// Deterministic reports the inline cross-check: the parallel run
	// produced a byte-identical model and an identical recommendation.
	Deterministic bool `json:"deterministic"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipelinebench: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// measure runs f once and reports its wall time and heap allocation
// count (runtime.MemStats.Mallocs delta, after a fresh GC).
func measure(f func() error) (float64, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := f()
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	return secs, m1.Mallocs - m0.Mallocs, err
}

func stage(name string, serial, parallel func() error) (stageResult, error) {
	sSec, sAllocs, err := measure(serial)
	if err != nil {
		return stageResult{}, fmt.Errorf("%s serial: %w", name, err)
	}
	pSec, pAllocs, err := measure(parallel)
	if err != nil {
		return stageResult{}, fmt.Errorf("%s parallel: %w", name, err)
	}
	return stageResult{
		Name:            name,
		SerialSeconds:   sSec,
		ParallelSeconds: pSec,
		Speedup:         sSec / pSec,
		SerialAllocs:    sAllocs,
		ParallelAllocs:  pAllocs,
	}, nil
}

// writeAllocProfile dumps the post-GC allocation profile to path.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	werr := pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func run(args []string) error {
	fs := flag.NewFlagSet("pipelinebench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_pipeline.json", "output path for the JSON report")
		ops        = fs.Int("ops", 60_000, "operations per benchmark sample")
		seed       = fs.Int64("seed", 1, "base seed")
		workers    = fs.Int("workers", 0, "parallel worker bound (0 = one per CPU)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				log.Printf("cpuprofile: %v", cerr)
			}
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil {
				log.Printf("cpuprofile: %v", cerr)
			}
		}()
	}
	if *memprofile != "" {
		// Written on every exit path (including a determinism failure)
		// so the profile of a failing run is still inspectable.
		defer func() {
			if err := writeAllocProfile(*memprofile); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	env := bench.DefaultEnv()
	env.SampleOps = *ops
	env.Seed = *seed
	space := config.Cassandra()
	collector := env.CassandraCollector()

	collectOpts := core.DefaultCollectOptions()
	modelCfg := nn.DefaultModelConfig()
	modelCfg.BR.Epochs = 60
	modelCfg.Seed = *seed + 41
	gaOpts := ga.DefaultOptions()
	gaOpts.Seed = *seed + 41

	rep := report{
		NumCPU:             runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Workers:            par.Workers(*workers),
		SampleOps:          *ops,
		Seed:               *seed,
		ParallelComparable: runtime.GOMAXPROCS(0) > 1,
	}

	// Stage 1: data collection. Serial and parallel must produce the
	// same dataset; the serial one feeds the later stages.
	var serialDS, parallelDS core.Dataset
	collectRes, err := stage("collect",
		func() error {
			o := collectOpts
			o.Workers = 1
			var err error
			serialDS, err = core.Collect(collector, space, o)
			return err
		},
		func() error {
			o := collectOpts
			o.Workers = *workers
			var err error
			parallelDS, err = core.Collect(collector, space, o)
			return err
		})
	if err != nil {
		return err
	}
	deterministic := reflect.DeepEqual(serialDS, parallelDS)

	// Stage 2: ensemble training.
	var serialSur, parallelSur *core.Surrogate
	trainRes, err := stage("train",
		func() error {
			cfg := modelCfg
			cfg.Workers = 1
			var err error
			serialSur, err = core.TrainSurrogate(serialDS, space, cfg)
			return err
		},
		func() error {
			cfg := modelCfg
			cfg.Workers = *workers
			var err error
			parallelSur, err = core.TrainSurrogate(serialDS, space, cfg)
			return err
		})
	if err != nil {
		return err
	}
	serialModel, err := json.Marshal(serialSur.Model)
	if err != nil {
		return err
	}
	parallelModel, err := json.Marshal(parallelSur.Model)
	if err != nil {
		return err
	}
	deterministic = deterministic && string(serialModel) == string(parallelModel)

	// Stage 3: surrogate-backed GA search across the paper's workload
	// sweep. The serial surrogate answers with one worker; the parallel
	// one fans batch predictions out.
	readRatios := []float64{0, 0.25, 0.5, 0.75, 1}
	var serialRecs, parallelRecs []core.OptimizeResult
	searchRes, err := stage("search",
		func() error {
			serialSur.Model.Workers = 1
			serialRecs = serialRecs[:0]
			for _, rr := range readRatios {
				rec, err := serialSur.Optimize(core.RR(rr), gaOpts)
				if err != nil {
					return err
				}
				serialRecs = append(serialRecs, rec)
			}
			return nil
		},
		func() error {
			parallelSur.Model.Workers = *workers
			parallelRecs = parallelRecs[:0]
			for _, rr := range readRatios {
				rec, err := parallelSur.Optimize(core.RR(rr), gaOpts)
				if err != nil {
					return err
				}
				parallelRecs = append(parallelRecs, rec)
			}
			return nil
		})
	if err != nil {
		return err
	}
	deterministic = deterministic && reflect.DeepEqual(serialRecs, parallelRecs)

	rep.Stages = []stageResult{collectRes, trainRes, searchRes}
	rep.Deterministic = deterministic
	for _, s := range rep.Stages {
		rep.Pipeline.SerialSeconds += s.SerialSeconds
		rep.Pipeline.ParallelSeconds += s.ParallelSeconds
		rep.Pipeline.SerialAllocs += s.SerialAllocs
		rep.Pipeline.ParallelAllocs += s.ParallelAllocs
	}
	rep.Pipeline.Name = "pipeline"
	rep.Pipeline.Speedup = rep.Pipeline.SerialSeconds / rep.Pipeline.ParallelSeconds

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if !deterministic {
		return fmt.Errorf("parallel pipeline diverged from serial run (see %s)", *out)
	}
	if rep.ParallelComparable {
		log.Printf("wrote %s (pipeline speedup %.2fx on %d workers, deterministic)", *out, rep.Pipeline.Speedup, rep.Workers)
	} else {
		log.Printf("wrote %s (GOMAXPROCS=1: speedup not meaningful, parallel_comparable=false; deterministic)", *out)
	}
	return nil
}
