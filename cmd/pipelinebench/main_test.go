package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMeasureReportsAllocsAndErrors(t *testing.T) {
	var sink [][]byte
	secs, allocs, err := measure(func() error {
		for i := 0; i < 100; i++ {
			sink = append(sink, make([]byte, 1024))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sink
	if secs < 0 {
		t.Errorf("negative wall time %v", secs)
	}
	if allocs < 100 {
		t.Errorf("allocs = %d, want >= 100", allocs)
	}

	boom := errors.New("boom")
	if _, _, err := measure(func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("measure swallowed the error: %v", err)
	}
}

func TestStageComputesSpeedupAndWrapsErrors(t *testing.T) {
	res, err := stage("demo", func() error { return nil }, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "demo" || res.Speedup <= 0 {
		t.Errorf("bad stage result: %+v", res)
	}

	boom := errors.New("boom")
	if _, err := stage("demo", func() error { return boom }, func() error { return nil }); err == nil || !strings.Contains(err.Error(), "demo serial") {
		t.Errorf("serial error not wrapped: %v", err)
	}
	if _, err := stage("demo", func() error { return nil }, func() error { return boom }); err == nil || !strings.Contains(err.Error(), "demo parallel") {
		t.Errorf("parallel error not wrapped: %v", err)
	}
}

func TestWriteAllocProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := writeAllocProfile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("allocation profile is empty")
	}
	if err := writeAllocProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")); err == nil {
		t.Fatal("writeAllocProfile to a missing directory must fail")
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}
