// Command tracegen synthesizes an MG-RAST-like workload trace (read
// ratio per 15-minute window with abrupt regime switches, Figure 3) and
// writes it as CSV, followed by regime statistics on stderr.
//
// Usage:
//
//	tracegen [-days 4] [-window 15] [-seed 1] [-out trace.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"rafiki/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	var (
		days   = flag.Int("days", 4, "trace length in days")
		window = flag.Int("window", 15, "observation window in minutes")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	trace, err := workload.SynthesizeTrace(workload.TraceSpec{
		Days:          *days,
		WindowMinutes: *window,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}

	dst := os.Stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		dst = f
	}
	w := csv.NewWriter(dst)
	if err := w.Write([]string{"window", "start_minutes", "read_ratio", "regime"}); err != nil {
		return err
	}
	for i, win := range trace {
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(win.Start.Minutes(), 'f', 0, 64),
			strconv.FormatFloat(win.ReadRatio, 'f', 4, 64),
			win.Regime.String(),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}

	stats, err := workload.AnalyzeTrace(trace)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "windows: %d\nread-heavy: %.1f%%\nwrite-heavy: %.1f%%\nmixed: %.1f%%\nabrupt transitions: %d\n",
		len(trace), 100*stats.ReadHeavyFrac, 100*stats.WriteHeavyFrac, 100*stats.MixedFrac, stats.Transitions)
	return nil
}
