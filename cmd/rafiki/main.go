// Command rafiki runs the Rafiki tuning pipeline end to end against the
// simulated datastore: optional ANOVA key-parameter identification,
// training-data collection, surrogate training, and a GA search for the
// best configuration at a target workload.
//
// Usage:
//
//	rafiki [-db cassandra|scylladb] [-rr 0.9] [-identify] [-ops N]
//	       [-configs N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rafiki/internal/bench"
	"rafiki/internal/config"
	"rafiki/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rafiki: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		db       = flag.String("db", "cassandra", "datastore to tune: cassandra or scylladb")
		rr       = flag.Float64("rr", 0.9, "target workload read ratio in [0,1]")
		identify = flag.Bool("identify", false, "run ANOVA key-parameter identification instead of using the published key set")
		ops      = flag.Int("ops", 100_000, "operations per benchmark sample")
		configs  = flag.Int("configs", 20, "configurations in the training dataset")
		seed     = flag.Int64("seed", 1, "base seed")
		metric   = flag.String("metric", "throughput", "performance metric to tune: throughput or latency (inverse p99)")
		saveTo   = flag.String("save-model", "", "write the trained surrogate to this path")
		loadFrom = flag.String("load-model", "", "skip the offline pipeline and load a surrogate from this path")
	)
	flag.Parse()

	env := bench.DefaultEnv()
	env.SampleOps = *ops
	env.Seed = *seed
	if err := env.Validate(); err != nil {
		return err
	}

	var (
		space     *config.Space
		collector core.Collector
	)
	switch *db {
	case "cassandra":
		space = config.Cassandra()
		collector = env.CassandraCollector()
	case "scylladb":
		space = config.ScyllaDB()
		collector = env.ScyllaCollector()
	default:
		return fmt.Errorf("unknown datastore %q", *db)
	}
	switch *metric {
	case "throughput":
	case "latency":
		// Section 3.8: the DBA picks the performance metric; the
		// latency objective maximizes inverse p99.
		if *db != "cassandra" {
			return fmt.Errorf("latency tuning is only wired for cassandra")
		}
		collector = env.CassandraLatencyCollector()
	default:
		return fmt.Errorf("unknown metric %q", *metric)
	}

	if *loadFrom != "" {
		return runFromSavedModel(*loadFrom, space, collector, *rr, *seed)
	}

	opts := core.DefaultTunerOptions()
	opts.SkipIdentify = !*identify
	opts.Collect.Configs = *configs
	opts.Collect.Seed = *seed
	opts.Model.Seed = *seed
	opts.GA.Seed = *seed

	tuner, err := core.NewTuner(collector, space, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stdout, "preparing tuner for %s (collect %d configs x %d workloads, train %d-net surrogate)...\n",
		space.Name, *configs, len(opts.Collect.Workloads), opts.Model.EnsembleSize)
	if err := tuner.Prepare(); err != nil {
		return err
	}
	if id := tuner.Identification(); id != nil {
		fmt.Println("ANOVA-selected key parameters:")
		for i, e := range id.Ranking.Entries {
			if i >= len(id.KeyNames) {
				break
			}
			fmt.Printf("  %d. %-36s std dev %.0f ops/s\n", i+1, e.Factor, e.ResponseStdDev)
		}
	}

	if *saveTo != "" {
		if err := tuner.Surrogate().Save(*saveTo); err != nil {
			return err
		}
		fmt.Printf("saved trained surrogate to %s\n", *saveTo)
	}

	rec, err := tuner.Recommend(core.RR(*rr))
	if err != nil {
		return err
	}
	fmt.Printf("\nrecommendation for RR=%.0f%% (%d surrogate evaluations):\n  %s\n",
		*rr*100, rec.Evaluations, space.Describe(rec.Config))
	fmt.Printf("predicted throughput: %.0f ops/s\n", rec.Predicted)

	defTput, err := collector.Sample(core.RR(*rr), config.Config{}, *seed+999_001)
	if err != nil {
		return err
	}
	recTput, err := collector.Sample(core.RR(*rr), rec.Config, *seed+999_002)
	if err != nil {
		return err
	}
	unit := "ops/s"
	if *metric == "latency" {
		unit = "1/s (inverse p99)"
	}
	fmt.Printf("measured: default %.0f %s, recommended %.0f %s (%+.1f%%)\n",
		defTput, unit, recTput, unit, 100*(recTput/defTput-1))
	return nil
}

// runFromSavedModel answers a tuning query from a persisted surrogate
// without re-running the offline pipeline.
func runFromSavedModel(path string, space *config.Space, collector core.Collector, rr float64, seed int64) error {
	sur, err := core.LoadSurrogate(path, space)
	if err != nil {
		return err
	}
	gaOpts := core.DefaultTunerOptions().GA
	gaOpts.Seed = seed
	rec, err := sur.Optimize(core.RR(rr), gaOpts)
	if err != nil {
		return err
	}
	fmt.Printf("recommendation for RR=%.0f%% from %s (%d surrogate evaluations):\n  %s\n",
		rr*100, path, rec.Evaluations, space.Describe(rec.Config))
	defTput, err := collector.Sample(core.RR(rr), config.Config{}, seed+999_001)
	if err != nil {
		return err
	}
	recTput, err := collector.Sample(core.RR(rr), rec.Config, seed+999_002)
	if err != nil {
		return err
	}
	fmt.Printf("measured: default %.0f, recommended %.0f (%+.1f%%)\n",
		defTput, recTput, 100*(recTput/defTput-1))
	return nil
}
