// Command rafikilint runs the repo's determinism- and safety-aware
// static analyzers (internal/lint) over the tree and exits nonzero on
// any unsuppressed diagnostic.
//
// Usage:
//
//	rafikilint [flags] [patterns...]
//
// Patterns are module-relative directories, optionally ending in /...
// (default "./..."). Flags:
//
//	-json            emit diagnostics as a JSON array instead of text
//	-show-suppressed also list findings silenced by //lint:allow
//	-exclude p1,p2   skip packages whose module-relative path starts
//	                 with one of the given prefixes
//	-analyzers a,b   run only the named analyzers (default: all)
//	-timing          report per-analyzer wall time on stderr
//
// Suppression comments take the form
//
//	//lint:allow <analyzer> <reason...>
//
// trailing the flagged line or alone on the line above it; the reason
// is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rafiki/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	showSuppressed := flag.Bool("show-suppressed", false, "also list suppressed findings")
	exclude := flag.String("exclude", "", "comma-separated module-relative path prefixes to skip")
	only := flag.String("analyzers", "", "comma-separated analyzer names to run (default all)")
	timing := flag.Bool("timing", false, "report per-analyzer wall time on stderr")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All()
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "rafikilint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rafikilint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rafikilint:", err)
		os.Exit(2)
	}
	var kept []*lint.Package
	excludes := splitNonEmpty(*exclude)
	for _, pkg := range pkgs {
		if !excluded(pkg.RelPath, excludes) {
			kept = append(kept, pkg)
		}
	}

	// The wall clock lives here, in cmd/, where nowall permits it;
	// internal/lint only ever sees the injected reading.
	var clock func() int64
	if *timing {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	diags, timings := lint.RunTimed(kept, analyzers, clock)
	if *timing {
		var total int64
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "rafikilint: %-14s %10.3fms\n", t.Analyzer, float64(t.Nanos)/1e6)
			total += t.Nanos
		}
		fmt.Fprintf(os.Stderr, "rafikilint: %-14s %10.3fms\n", "total", float64(total)/1e6)
	}
	failing := lint.Unsuppressed(diags)
	shown := failing
	if *showSuppressed {
		shown = diags
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []lint.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintln(os.Stderr, "rafikilint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range shown {
			if d.Suppressed {
				fmt.Printf("%s [suppressed: %s]\n", d, d.Reason)
			} else {
				fmt.Println(d)
			}
		}
		if len(failing) > 0 {
			fmt.Printf("rafikilint: %d finding(s) in %d package(s)\n", len(failing), len(kept))
		}
	}
	if len(failing) > 0 {
		os.Exit(1)
	}
}

// splitNonEmpty splits a comma list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// excluded reports whether rel matches any exclusion prefix.
func excluded(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		p = strings.TrimPrefix(p, "./")
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
