// Command enginebench measures the storage-engine simulator's raw
// serving speed — wall-clock operations per second and heap allocations
// per operation — separately for each op type (read, update, insert,
// delete, scan). The result is written as JSON; the committed
// BENCH_engine.json is the tracked trajectory of those numbers across
// PRs, so hot-path regressions show up in review rather than in a
// slower collect stage three PRs later.
//
// Each op type runs against its own freshly preloaded engine that is
// first warmed with a mixed workload, so the measured loop sees the
// steady state (warm block cache, digested first flushes) rather than
// cold-start allocation.
//
// Usage:
//
//	enginebench [-out BENCH_engine.json] [-ops N] [-seed N]
//	            [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rafiki/internal/config"
	"rafiki/internal/nosql"
)

// opResult is one op type's measurement.
type opResult struct {
	Op          string  `json:"op"`
	Ops         int     `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Allocs      uint64  `json:"allocs"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// report is the file this command writes.
type report struct {
	NumCPU     int        `json:"num_cpu"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	OpsPerType int        `json:"ops_per_type"`
	WarmupOps  int        `json:"warmup_ops"`
	Seed       int64      `json:"seed"`
	Ops        []opResult `json:"ops"`
	// TotalOpsPerSec is the harmonic-mean-free summary: total measured
	// ops over total measured wall time across all op types.
	TotalOpsPerSec float64 `json:"total_ops_per_sec"`
	// TotalAllocsPerOp is total allocations over total ops — the number
	// the collect stage's cost scales with.
	TotalAllocsPerOp float64 `json:"total_allocs_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("enginebench: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// newWarmEngine builds a preloaded engine and drives a mixed warmup
// through it so the measured loop starts from the serving steady state.
func newWarmEngine(seed int64, warmupOps int) (*nosql.Engine, error) {
	e, err := nosql.New(nosql.Options{Space: config.Cassandra(), Seed: seed})
	if err != nil {
		return nil, err
	}
	e.Preload(3)
	rng := rand.New(rand.NewSource(seed + 1))
	n := int64(e.KeySpace())
	for i := 0; i < warmupOps; i++ {
		k := uint64(rng.Int63n(n))
		switch i % 4 {
		case 0, 1:
			e.Read(k)
		case 2:
			e.Write(k)
		case 3:
			e.Delete(k)
		}
	}
	e.FinishEpoch()
	return e, nil
}

// measureOp times n repetitions of op (plus the closing FinishEpoch)
// and reports wall seconds and the heap allocation count
// (runtime.MemStats.Mallocs delta after a fresh GC).
func measureOp(e *nosql.Engine, n int, op func(i int)) (float64, uint64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		op(i)
	}
	e.FinishEpoch()
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	return secs, m1.Mallocs - m0.Mallocs
}

// writeAllocProfile dumps the post-GC allocation profile to path.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	werr := pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func run(args []string) error {
	fs := flag.NewFlagSet("enginebench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_engine.json", "output path for the JSON report")
		ops        = fs.Int("ops", 200_000, "measured operations per op type")
		seed       = fs.Int64("seed", 1, "base seed")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				log.Printf("cpuprofile: %v", cerr)
			}
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil {
				log.Printf("cpuprofile: %v", cerr)
			}
		}()
	}

	warmup := *ops / 4
	rep := report{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OpsPerType: *ops,
		WarmupOps:  warmup,
		Seed:       *seed,
	}

	var totalOps int
	var totalSecs float64
	var totalAllocs uint64
	for _, bench := range []struct {
		name string
		op   func(e *nosql.Engine, rng *rand.Rand, frontier *uint64) func(i int)
	}{
		{"read", func(e *nosql.Engine, rng *rand.Rand, _ *uint64) func(i int) {
			n := int64(e.KeySpace())
			return func(int) { e.Read(uint64(rng.Int63n(n))) }
		}},
		{"update", func(e *nosql.Engine, rng *rand.Rand, _ *uint64) func(i int) {
			n := int64(e.KeySpace())
			return func(int) { e.Write(uint64(rng.Int63n(n))) }
		}},
		{"insert", func(e *nosql.Engine, _ *rand.Rand, frontier *uint64) func(i int) {
			return func(int) { e.Write(*frontier); *frontier++ }
		}},
		{"delete", func(e *nosql.Engine, rng *rand.Rand, _ *uint64) func(i int) {
			n := int64(e.KeySpace())
			return func(int) { e.Delete(uint64(rng.Int63n(n))) }
		}},
		{"scan", func(e *nosql.Engine, rng *rand.Rand, _ *uint64) func(i int) {
			n := int64(e.KeySpace())
			return func(int) { e.Scan(uint64(rng.Int63n(n)), 64) }
		}},
	} {
		e, err := newWarmEngine(*seed, warmup)
		if err != nil {
			return fmt.Errorf("%s: %w", bench.name, err)
		}
		rng := rand.New(rand.NewSource(*seed + 2))
		frontier := uint64(e.KeySpace())
		secs, allocs := measureOp(e, *ops, bench.op(e, rng, &frontier))
		rep.Ops = append(rep.Ops, opResult{
			Op:          bench.name,
			Ops:         *ops,
			WallSeconds: secs,
			OpsPerSec:   float64(*ops) / secs,
			Allocs:      allocs,
			AllocsPerOp: float64(allocs) / float64(*ops),
		})
		totalOps += *ops
		totalSecs += secs
		totalAllocs += allocs
	}
	rep.TotalOpsPerSec = float64(totalOps) / totalSecs
	rep.TotalAllocsPerOp = float64(totalAllocs) / float64(totalOps)

	if *memprofile != "" {
		if err := writeAllocProfile(*memprofile); err != nil {
			return err
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%.0f ops/s overall, %.3f allocs/op)", *out, rep.TotalOpsPerSec, rep.TotalAllocsPerOp)
	return nil
}
