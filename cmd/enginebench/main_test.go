package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rafiki/internal/nosql"
)

func TestNewWarmEngineServesAllOpTypes(t *testing.T) {
	e, err := newWarmEngine(3, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Clock() <= 0 {
		t.Fatal("warmup consumed no virtual time")
	}
	before := e.Clock()
	e.Read(1)
	e.Write(2)
	e.Delete(3)
	e.Scan(0, 16)
	e.FinishEpoch()
	if e.Clock() <= before {
		t.Fatal("post-warmup ops consumed no virtual time")
	}
}

func TestMeasureOpCountsAllocsAndTime(t *testing.T) {
	e, err := newWarmEngine(5, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	var sink [][]byte
	secs, allocs := measureOp(e, 100, func(int) {
		sink = append(sink, make([]byte, 512))
	})
	_ = sink
	if secs < 0 {
		t.Errorf("negative wall time %v", secs)
	}
	if allocs < 100 {
		t.Errorf("allocs = %d, want >= 100", allocs)
	}
}

func TestMeasuredOpLoopMatchesEngineSteadyState(t *testing.T) {
	// The read loop over a warm engine must stay within the alloc
	// budget the engine's own TestOpAllocGuard pins — if this drifts,
	// the benchmark is measuring harness overhead, not the engine.
	e, err := newWarmEngine(7, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := int64(e.KeySpace())
	var eng *nosql.Engine = e
	_, allocs := measureOp(eng, 5_000, func(int) {
		eng.Read(uint64(rng.Int63n(n)))
	})
	if perOp := float64(allocs) / 5_000; perOp > 0.25 {
		t.Errorf("read loop allocates %.3f/op, want well under 0.25", perOp)
	}
}

func TestRunWritesReportAndProfiles(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "engine.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{
		"-out", outPath, "-ops", "2000", "-seed", "7",
		"-cpuprofile", cpu, "-memprofile", mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.OpsPerType != 2000 || rep.Seed != 7 || rep.WarmupOps != 500 {
		t.Errorf("report header = ops %d seed %d warmup %d, want 2000/7/500",
			rep.OpsPerType, rep.Seed, rep.WarmupOps)
	}
	wantOps := []string{"read", "update", "insert", "delete", "scan"}
	if len(rep.Ops) != len(wantOps) {
		t.Fatalf("measured %d op types, want %d", len(rep.Ops), len(wantOps))
	}
	for i, r := range rep.Ops {
		if r.Op != wantOps[i] {
			t.Errorf("op[%d] = %q, want %q", i, r.Op, wantOps[i])
		}
		if r.Ops != 2000 || r.OpsPerSec <= 0 || r.WallSeconds <= 0 {
			t.Errorf("op %s: ops %d secs %v ops/s %v, want positive measurements of 2000 ops",
				r.Op, r.Ops, r.WallSeconds, r.OpsPerSec)
		}
	}
	if rep.TotalOpsPerSec <= 0 {
		t.Errorf("total ops/s = %v, want > 0", rep.TotalOpsPerSec)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}
