// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints the reports, optionally writing them to
// a file (the source of EXPERIMENTS.md's measured numbers).
//
// Usage:
//
//	experiments [-only figure4,table1] [-ops N] [-seed N] [-out path]
//	            [-obs] [-obs-json path] [-workers N] [-netsim] [-chaos]
//	            [-frontdoor] [-slo] [-workload-mix] [-ring]
//
// The netsim, chaos, frontdoor, slo, workloadmix, and ring experiments
// are opt-in: -netsim replays the standard workload under simulated
// network conditions (flaky links, duplication, delay, partitions);
// -chaos runs the consistency chaos search over a fixed seed set,
// failing if a corruption-free consistency violation is found and
// shrunk (the suite includes a topology phase racing joins,
// decommissions, and rolling restarts against the rebalance);
// -frontdoor demonstrates the multi-tenant front door (admission
// control, backpressure, load shedding) under an overload + fault
// schedule; -slo runs the front-door overload chaos gate over its
// fixed seed set, failing if any seed misses its SLO, sheds
// nondeterministically, or violates session guarantees; -workload-mix
// trains a pipeline over a read-ratio x scan-ratio grid and sweeps the
// scan share at a write-heavy read ratio, failing unless the tuner
// discovers the leveled-compaction preference as scans rise; and -ring
// drives 16-64 node token rings through a join and a decommission
// under QUORUM load, failing if an acked write becomes unreadable or a
// rebalance fails to drain. Setting any of these flags (or naming the
// IDs in -only) selects just those experiments unless others are also
// listed.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"rafiki/internal/bench"
	"rafiki/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	var (
		only    = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		ops     = flag.Int("ops", 100_000, "operations per benchmark sample")
		seed    = flag.Int64("seed", 1, "base seed")
		out     = flag.String("out", "", "also write rendered reports to this file")
		showObs = flag.Bool("obs", false, "print the observability dashboard after the experiments")
		obsJSON = flag.String("obs-json", "", "write the observability snapshot as JSON to this file")
		workers = flag.Int("workers", 0, "worker bound for every parallel stage (0 = one per CPU, 1 = serial); results are identical for any value")
		netsim  = flag.Bool("netsim", false, "run the netsim experiment (workload under simulated network faults); opt-in, never part of the default set")
		chaos   = flag.Bool("chaos", false, "run the chaos search (consistency checking over explored fault schedules; exits nonzero on a protocol violation); opt-in, never part of the default set")
		fdoor   = flag.Bool("frontdoor", false, "run the front-door demo (multi-tenant admission control, backpressure, and load shedding under overload + faults); opt-in, never part of the default set")
		slo     = flag.Bool("slo", false, "run the SLO gate (front-door overload chaos over a fixed seed set; exits nonzero on an SLO miss, nondeterministic shedding, or a session-guarantee violation); opt-in, never part of the default set")
		wmix    = flag.Bool("workload-mix", false, "run the workload-mix experiment (trains over a read-ratio x scan-ratio grid and sweeps scan share; exits nonzero unless the tuner discovers the leveled-compaction preference as scans rise); opt-in, never part of the default set")
		ringF   = flag.Bool("ring", false, "run the ring experiment (16-64 node token rings through join + decommission under QUORUM load; exits nonzero if an acked write becomes unreadable or a rebalance fails to drain); opt-in, never part of the default set")
	)
	flag.Parse()

	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	if *netsim {
		selected["netsim"] = true
	}
	if *chaos {
		selected["chaos"] = true
	}
	if *fdoor {
		selected["frontdoor"] = true
	}
	if *slo {
		selected["slo"] = true
	}
	if *wmix {
		selected["workloadmix"] = true
	}
	if *ringF {
		selected["ring"] = true
	}
	// netsim, chaos, frontdoor, and slo are opt-in only: they never
	// join the implicit "run everything" set, so the default experiment
	// output is unchanged by their existence.
	optIn := map[string]bool{"netsim": true, "chaos": true, "frontdoor": true, "slo": true, "workloadmix": true, "ring": true}
	want := func(id string) bool {
		if optIn[id] {
			return selected[id]
		}
		return len(selected) == 0 || selected[id]
	}

	var sinks []io.Writer
	sinks = append(sinks, os.Stdout)
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	opts := bench.DefaultPipelineOptions()
	opts.Env.SampleOps = *ops
	opts.Env.Seed = *seed
	opts.Env.Workers = *workers

	// Instrumentation is opt-in: a nil registry costs one predictable
	// branch per hot-path event.
	var reg *obs.Registry
	if *showObs || *obsJSON != "" {
		reg = obs.NewRegistry()
		opts.Env.Obs = reg
	}
	defer func() {
		if reg == nil {
			return
		}
		if *showObs {
			fmt.Fprintf(w, "%s\n", reg.Snapshot().Dashboard())
		}
		if *obsJSON != "" {
			blob, err := reg.Snapshot().JSON()
			if err != nil {
				log.Printf("obs snapshot: %v", err)
				return
			}
			if err := os.WriteFile(*obsJSON, blob, 0o644); err != nil {
				log.Printf("obs snapshot: %v", err)
			}
		}
	}()

	emit := func(rep bench.Report, err error, elapsed time.Duration) error {
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n(elapsed %s)\n\n", rep.Render(), elapsed.Round(time.Millisecond))
		return nil
	}
	timed := func(f func() (bench.Report, error)) (bench.Report, error, time.Duration) {
		start := time.Now()
		rep, err := f()
		return rep, err, time.Since(start)
	}

	// Experiments that do not need the trained pipeline.
	if want("figure3") {
		if err := emit(timed(func() (bench.Report, error) { return bench.Figure3(opts.Env) })); err != nil {
			return err
		}
	}
	if want("figure5") {
		if err := emit(timed(func() (bench.Report, error) { return bench.Figure5(opts.Env) })); err != nil {
			return err
		}
	}
	if want("figure6") {
		if err := emit(timed(func() (bench.Report, error) { return bench.Figure6(opts.Env) })); err != nil {
			return err
		}
	}
	if want("figure10") {
		if err := emit(timed(func() (bench.Report, error) { return bench.Figure10(opts.Env) })); err != nil {
			return err
		}
	}
	if want("faultinjection") {
		if err := emit(timed(func() (bench.Report, error) { return bench.FaultInjection(opts.Env) })); err != nil {
			return err
		}
	}
	if want("netsim") {
		if err := emit(timed(func() (bench.Report, error) { return bench.NetSim(opts.Env) })); err != nil {
			return err
		}
	}
	if want("chaos") {
		rep, cerr, elapsed := timed(func() (bench.Report, error) { return bench.Chaos(opts.Env) })
		// A chaos violation still carries a report worth reading: print
		// it before failing.
		if cerr != nil && rep.ID != "" {
			fmt.Fprintf(w, "%s\n", rep.Render())
		}
		if err := emit(rep, cerr, elapsed); err != nil {
			return err
		}
	}

	if want("ring") {
		rep, rerr, elapsed := timed(func() (bench.Report, error) { return bench.Ring(opts.Env) })
		// A failed readability or determinism gate still carries the
		// per-scale table worth reading: print it before failing.
		if rerr != nil && rep.ID != "" {
			fmt.Fprintf(w, "%s\n", rep.Render())
		}
		if err := emit(rep, rerr, elapsed); err != nil {
			return err
		}
	}

	if want("frontdoor") {
		if err := emit(timed(func() (bench.Report, error) { return bench.FrontDoor(opts.Env) })); err != nil {
			return err
		}
	}
	if want("slo") {
		rep, serr, elapsed := timed(func() (bench.Report, error) { return bench.SLO(opts.Env) })
		// A failing gate still carries the per-seed table worth
		// reading: print it before failing.
		if serr != nil && rep.ID != "" {
			fmt.Fprintf(w, "%s\n", rep.Render())
		}
		if err := emit(rep, serr, elapsed); err != nil {
			return err
		}
	}

	if want("workloadmix") {
		// Trains its own pipeline over the read-ratio x scan-ratio grid,
		// so it does not share the standard pipeline below.
		log.Print("running workloadmix (trains a mixed-shape pipeline)...")
		rep, merr, elapsed := timed(func() (bench.Report, error) { return bench.WorkloadMix(opts) })
		// A failed discovery still carries the sweep table worth
		// reading: print it before failing.
		if merr != nil && rep.ID != "" {
			fmt.Fprintf(w, "%s\n", rep.Render())
		}
		if err := emit(rep, merr, elapsed); err != nil {
			return err
		}
	}

	pipelineWanted := false
	for _, id := range []string{"figure4", "figure7", "figure8", "figure9", "table1", "table2", "table3", "searchspeed", "ablation-search", "ablation-trainer", "ablation-model", "ablation-surrogate-search", "crossworkload", "dynamic"} {
		if want(id) {
			pipelineWanted = true
			break
		}
	}
	if pipelineWanted {
		log.Printf("building Cassandra pipeline (%d samples)...", len(opts.Collect.Workloads)*opts.Collect.Configs)
		start := time.Now()
		p, err := bench.NewCassandraPipeline(opts)
		if err != nil {
			return err
		}
		log.Printf("pipeline ready in %s", time.Since(start).Round(time.Millisecond))

		steps := []struct {
			id string
			fn func(*bench.Pipeline) (bench.Report, error)
		}{
			{"figure4", bench.Figure4},
			{"table1", bench.Table1},
			{"table2", bench.Table2},
			{"figure7", bench.Figure7},
			{"figure8", bench.Figure8},
			{"figure9", bench.Figure9},
			{"searchspeed", bench.SearchSpeed},
			{"table3", bench.Table3},
			{"ablation-search", bench.AblationSearch},
			{"ablation-trainer", bench.AblationTrainer},
			{"ablation-model", bench.AblationModel},
			{"ablation-surrogate-search", bench.AblationSurrogateSearch},
			{"crossworkload", bench.CrossWorkloadPenalty},
			{"dynamic", bench.DynamicTrace},
		}
		for _, s := range steps {
			if !want(s.id) {
				continue
			}
			log.Printf("running %s...", s.id)
			if err := emit(timed(func() (bench.Report, error) { return s.fn(p) })); err != nil {
				return fmt.Errorf("%s: %w", s.id, err)
			}
		}
	}

	if want("table4") || want("table2-scylla") {
		log.Print("building ScyllaDB pipeline...")
		sp, err := bench.NewScyllaPipeline(opts)
		if err != nil {
			return err
		}
		if want("table4") {
			if err := emit(timed(func() (bench.Report, error) { return bench.Table4(sp) })); err != nil {
				return fmt.Errorf("table4: %w", err)
			}
		}
		if want("table2-scylla") {
			rep, err, elapsed := timed(func() (bench.Report, error) { return bench.Table2(sp) })
			rep.ID = "table2-scylla"
			rep.Title = "Surrogate prediction performance on ScyllaDB"
			rep.Notes = append(rep.Notes, "paper: ScyllaDB prediction error 6.9-7.8% — worse than Cassandra's because the auto-tuner makes throughput noisy (Figure 10)")
			if err := emit(rep, err, elapsed); err != nil {
				return fmt.Errorf("table2-scylla: %w", err)
			}
		}
	}
	return nil
}
