package rafiki_test

import (
	"testing"

	"rafiki"
)

func TestPublicAPIEngineAndWorkload(t *testing.T) {
	eng, err := rafiki.NewEngine(rafiki.EngineOptions{
		Space: rafiki.CassandraSpace(),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Preload(3)
	res, err := rafiki.RunWorkload(eng, rafiki.WorkloadSpec{
		ReadRatio: 0.7,
		KRDMean:   float64(eng.KeySpace()) / 2,
		Ops:       30_000,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	m := eng.Metrics()
	if m.Ops() != 30_000 {
		t.Errorf("ops = %d", m.Ops())
	}
}

func TestPublicAPIScyllaEngine(t *testing.T) {
	eng, err := rafiki.NewScyllaEngine(rafiki.ScyllaOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng.Preload(2)
	res, err := rafiki.RunWorkload(eng, rafiki.WorkloadSpec{
		ReadRatio: 0.5,
		KRDMean:   float64(eng.KeySpace()) / 2,
		Ops:       20_000,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPublicAPITrace(t *testing.T) {
	trace, err := rafiki.SynthesizeTrace(rafiki.DefaultTraceSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 384 {
		t.Errorf("trace windows = %d, want 384", len(trace))
	}
	ops := []rafiki.Op{{IsRead: true, Key: 1}, {IsRead: false, Key: 1}}
	ch, err := rafiki.Characterize(ops, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.WindowReadRatios) != 1 || ch.WindowReadRatios[0] != 0.5 {
		t.Errorf("characterization = %+v", ch)
	}
}

func TestPublicAPICluster(t *testing.T) {
	c, err := rafiki.NewCluster(rafiki.ClusterOptions{
		Nodes:             2,
		ReplicationFactor: 2,
		Space:             rafiki.CassandraSpace(),
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Preload(2)
	res, err := rafiki.RunWorkload(c, rafiki.WorkloadSpec{
		ReadRatio: 0.9,
		KRDMean:   float64(c.KeySpace()) / 2,
		Ops:       20_000,
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPublicAPITunerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning is slow")
	}
	collector := rafiki.NewSimulatorCollector(rafiki.SimulatorConfig{
		SampleOps: 25_000,
		Seed:      7,
	})
	opts := rafiki.DefaultTunerOptions()
	opts.SkipIdentify = true
	opts.Collect.Workloads = rafiki.RRs(0, 0.3, 0.6, 0.9)
	opts.Collect.Configs = 10
	opts.Model.EnsembleSize = 4
	opts.Model.BR.Epochs = 30
	opts.GA.Population = 24
	opts.GA.Generations = 20

	tuner, err := rafiki.NewTuner(collector, rafiki.CassandraSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Prepare(); err != nil {
		t.Fatal(err)
	}
	rec, err := tuner.Recommend(rafiki.RR(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Config) == 0 {
		t.Error("empty recommendation")
	}

	// Drive the online controller against a live engine.
	eng, err := rafiki.NewEngine(rafiki.EngineOptions{Space: rafiki.CassandraSpace(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng.Preload(2)
	ctrl, err := rafiki.NewController(tuner, eng, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	retuned, err := ctrl.Observe(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !retuned {
		t.Error("first observation should retune")
	}
}

func TestPublicAPIForecasterAndGenerators(t *testing.T) {
	m, err := rafiki.NewMarkovForecaster(5)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(0.8)
	if p := m.Predict(); p < 0 || p > 1 {
		t.Errorf("Predict = %v", p)
	}
	e, err := rafiki.NewEWMAForecaster(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(0.4)
	if e.Predict() != 0.4 {
		t.Errorf("EWMA Predict = %v", e.Predict())
	}
	kg, err := rafiki.NewKeyGenerator(1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kg.Next() >= 1000 {
		t.Error("key out of range")
	}
	zg, err := rafiki.NewZipfKeyGenerator(1000, 1.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if zg.Next() >= 1000 {
		t.Error("zipf key out of range")
	}
}

func TestPublicAPIClusterFailover(t *testing.T) {
	c, err := rafiki.NewCluster(rafiki.ClusterOptions{
		Nodes:             2,
		ReplicationFactor: 2,
		Space:             rafiki.CassandraSpace(),
		Seed:              11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetReadConsistency(rafiki.ConsistencyQuorum); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	c.Read(1)
	if c.Stats().UnavailableReads != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
	if err := c.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIEngineRestart(t *testing.T) {
	eng, err := rafiki.NewEngine(rafiki.EngineOptions{Space: rafiki.CassandraSpace(), Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		eng.Write(k)
	}
	eng.FinishEpoch()
	eng.Restart()
	if eng.Metrics().ReplayedRecords != 100 {
		t.Errorf("replayed = %d", eng.Metrics().ReplayedRecords)
	}
	if eng.Metrics().LatencyPercentile(0.5) <= 0 {
		t.Error("latency percentile missing")
	}
}
