// Package rafiki is a from-scratch Go reproduction of "Rafiki: A
// Middleware for Parameter Tuning of NoSQL Datastores for Dynamic
// Metagenomics Workloads" (Mahgoub et al., ACM Middleware 2017).
//
// The package exposes the full system: a structural Cassandra/ScyllaDB
// storage-engine simulator (commit log, memtables, SSTables, size-tiered
// and leveled compaction, file cache, virtual-clock resource model), a
// YCSB-like workload driver with MG-RAST-style trace synthesis, and the
// Rafiki middleware itself — ANOVA key-parameter identification, a
// Bayesian-regularized neural-network surrogate of throughput, and a
// genetic-algorithm configuration search, plus the online controller
// that re-tunes the datastore when the workload shifts.
//
// Quick start:
//
//	collector := rafiki.NewSimulatorCollector(rafiki.SimulatorConfig{})
//	tuner, _ := rafiki.NewTuner(collector, rafiki.CassandraSpace(), rafiki.DefaultTunerOptions())
//	_ = tuner.Prepare()                 // offline: collect + train
//	rec, _ := tuner.Recommend(rafiki.RR(0.9)) // online: tune for a read-heavy workload
//	fmt.Println(rafiki.CassandraSpace().Describe(rec.Config))
//
// See examples/ for runnable scenarios and internal/bench for the
// harness that regenerates every table and figure of the paper.
package rafiki

import (
	"rafiki/internal/cluster"
	"rafiki/internal/config"
	"rafiki/internal/core"
	"rafiki/internal/fault"
	"rafiki/internal/forecast"
	"rafiki/internal/ga"
	"rafiki/internal/nn"
	"rafiki/internal/nosql"
	"rafiki/internal/obs"
	"rafiki/internal/workload"
)

// Configuration-space types.
type (
	// Config is an assignment of values to configuration parameters.
	Config = config.Config
	// Space describes a datastore's tunable parameters.
	Space = config.Space
	// Parameter describes one tunable parameter.
	Parameter = config.Parameter
)

// Key parameter names (Section 3.4.1) and compaction strategies.
const (
	ParamCompactionStrategy   = config.ParamCompactionStrategy
	ParamConcurrentWrites     = config.ParamConcurrentWrites
	ParamFileCacheSize        = config.ParamFileCacheSize
	ParamMemtableCleanup      = config.ParamMemtableCleanup
	ParamConcurrentCompactors = config.ParamConcurrentCompactors

	CompactionSizeTiered = config.CompactionSizeTiered
	CompactionLeveled    = config.CompactionLeveled
)

// CassandraSpace returns the Cassandra 3.x configuration space with the
// paper's five key parameters pre-selected.
func CassandraSpace() *Space { return config.Cassandra() }

// ScyllaDBSpace returns the ScyllaDB configuration space (auto-tuned
// parameters flagged as ignored).
func ScyllaDBSpace() *Space { return config.ScyllaDB() }

// Storage-engine simulator types.
type (
	// Engine is the simulated Cassandra-style storage engine.
	Engine = nosql.Engine
	// EngineOptions configures an Engine.
	EngineOptions = nosql.Options
	// ScyllaEngine is the ScyllaDB variant with an internal auto-tuner.
	ScyllaEngine = nosql.ScyllaEngine
	// ScyllaOptions configures a ScyllaEngine.
	ScyllaOptions = nosql.ScyllaOptions
	// Hardware models the simulated server.
	Hardware = nosql.Hardware
	// CostModel holds the simulator's calibrated cost coefficients.
	CostModel = nosql.CostModel
	// Metrics is an engine counter snapshot.
	Metrics = nosql.Metrics
)

// NewEngine constructs a simulated Cassandra engine.
func NewEngine(opts EngineOptions) (*Engine, error) { return nosql.New(opts) }

// NewScyllaEngine constructs the ScyllaDB variant.
func NewScyllaEngine(opts ScyllaOptions) (*ScyllaEngine, error) { return nosql.NewScylla(opts) }

// DefaultHardware returns the Dell R430-like server model.
func DefaultHardware() Hardware { return nosql.DefaultHardware() }

// DefaultCostModel returns the calibrated simulator coefficients.
func DefaultCostModel() CostModel { return nosql.DefaultCostModel() }

// Workload types.
type (
	// WorkloadSpec parameterizes a synthetic workload (read ratio, key
	// reuse distance, operation count).
	WorkloadSpec = workload.Spec
	// WorkloadResult is a benchmark run's outcome.
	WorkloadResult = workload.Result
	// Store is the driver's view of a datastore (Engine, ScyllaEngine,
	// and Cluster all satisfy it).
	Store = workload.Store
	// TraceSpec parameterizes the MG-RAST-like trace synthesizer.
	TraceSpec = workload.TraceSpec
	// TraceWindow is one 15-minute observation window of a trace.
	TraceWindow = workload.Window
	// Op is one logged query for workload characterization.
	Op = workload.Op
	// Characterization is the RR/KRD summary of a raw query stream.
	Characterization = workload.Characterization
)

// RunWorkload applies spec to a store and measures throughput.
func RunWorkload(store Store, spec WorkloadSpec) (WorkloadResult, error) {
	return workload.Run(store, spec)
}

// DefaultTraceSpec mirrors the paper's 4-day, 15-minute-window setup.
func DefaultTraceSpec() TraceSpec { return workload.DefaultTraceSpec() }

// SynthesizeTrace generates an MG-RAST-like read-ratio trace.
func SynthesizeTrace(spec TraceSpec) ([]TraceWindow, error) {
	return workload.SynthesizeTrace(spec)
}

// Characterize analyzes a raw op stream into per-window read ratios and
// a fitted key-reuse-distance distribution (Section 3.3).
func Characterize(ops []Op, windowOps int) (Characterization, error) {
	return workload.Characterize(ops, windowOps)
}

// Middleware types.
type (
	// Collector benchmarks one (workload, configuration) point.
	Collector = core.Collector
	// CollectorFunc adapts a function to Collector.
	CollectorFunc = core.CollectorFunc
	// Workload is the characterization vector a sample is collected
	// under: read ratio over point operations, range-scan ratio, and
	// hotspot skew.
	Workload = core.Workload
	// Tuner is the Rafiki middleware (offline pipeline + online search).
	Tuner = core.Tuner
	// TunerOptions configures the workflow.
	TunerOptions = core.TunerOptions
	// OptimizeResult is a configuration recommendation.
	OptimizeResult = core.OptimizeResult
	// Surrogate is the trained performance model.
	Surrogate = core.Surrogate
	// Dataset is the collected training data.
	Dataset = core.Dataset
	// Controller is the online reconfiguration loop.
	Controller = core.Controller
	// Applier receives recommended configurations (engines and clusters
	// satisfy it).
	Applier = core.Applier
	// Identification is the ANOVA stage's outcome.
	Identification = core.Identification
	// GAOptions tunes the genetic-algorithm search.
	GAOptions = ga.Options
	// ModelConfig tunes the neural-network surrogate.
	ModelConfig = nn.ModelConfig
)

// ErrNotPrepared is returned by online queries before Tuner.Prepare.
var ErrNotPrepared = core.ErrNotPrepared

// RR builds a point-operation-only Workload from a read ratio — the
// paper's original single-axis characterization.
func RR(readRatio float64) Workload { return core.RR(readRatio) }

// RRs wraps scalar read ratios as point-operation-only Workloads — the
// shape of the paper's collection grid.
func RRs(readRatios ...float64) []Workload { return core.RRs(readRatios...) }

// NewTuner wires the middleware for a datastore described by space.
func NewTuner(c Collector, space *Space, opts TunerOptions) (*Tuner, error) {
	return core.NewTuner(c, space, opts)
}

// DefaultTunerOptions mirrors the paper's pipeline end to end.
func DefaultTunerOptions() TunerOptions { return core.DefaultTunerOptions() }

// NewController builds the online controller that watches read-ratio
// windows and re-tunes the datastore on workload shifts.
func NewController(t *Tuner, a Applier, threshold float64) (*Controller, error) {
	return core.NewController(t, a, threshold)
}

// Cluster types.
type (
	// Cluster is a replicated multi-node deployment.
	Cluster = cluster.Cluster
	// ClusterOptions configures a Cluster.
	ClusterOptions = cluster.Options
)

// NewCluster builds a multi-node cluster of simulated engines.
func NewCluster(opts ClusterOptions) (*Cluster, error) { return cluster.New(opts) }

// SimulatorConfig sizes the built-in simulator-backed Collector.
type SimulatorConfig struct {
	// Space selects the datastore; nil means Cassandra.
	Space *Space
	// SampleOps is the operation count per benchmark sample (default
	// 100,000 — the analog of the paper's 5-minute window).
	SampleOps int
	// KRDFraction sets the key-reuse-distance mean as a fraction of the
	// key space (default 0.5; MG-RAST's KRD is large).
	KRDFraction float64
	// PreloadVersions controls preloaded dataset overlap (default 3).
	PreloadVersions int
	// Seed is the base seed.
	Seed int64
	// Obs, when non-nil, receives engine telemetry from every sample
	// the collector runs (nil disables instrumentation at ~zero cost).
	Obs *ObsRegistry
}

// NewSimulatorCollector returns a Collector backed by a fresh simulated
// engine per sample — the programmatic equivalent of the paper's
// Docker-reset benchmarking protocol.
func NewSimulatorCollector(sc SimulatorConfig) Collector {
	if sc.Space == nil {
		sc.Space = config.Cassandra()
	}
	if sc.SampleOps <= 0 {
		sc.SampleOps = 100_000
	}
	if sc.KRDFraction <= 0 {
		sc.KRDFraction = 2.0
	}
	if sc.PreloadVersions <= 0 {
		sc.PreloadVersions = 3
	}
	return core.CollectorFunc(func(w core.Workload, cfg config.Config, seed int64) (float64, error) {
		eng, err := nosql.New(nosql.Options{
			Space:  sc.Space,
			Config: cfg,
			Seed:   sc.Seed ^ seed,
			Obs:    sc.Obs,
		})
		if err != nil {
			return 0, err
		}
		eng.Preload(sc.PreloadVersions)
		spec := workload.Spec{
			ReadRatio: w.ReadRatio,
			KRDMean:   sc.KRDFraction * float64(eng.KeySpace()),
			Ops:       sc.SampleOps,
			Seed:      seed + 101,
		}
		// RR-only workloads keep the legacy spec bit-identical; op-mix
		// shapes route through the full CRUD+scan driver.
		if w.ScanRatio != 0 || w.Skew != 0 {
			spec.Mix = workload.MixForShape(w.ReadRatio, w.ScanRatio, 0.05)
			if w.Skew > 0 {
				spec.Distribution = workload.DistHotspot
				spec.HotspotWeight = w.Skew
			}
		}
		res, err := workload.Run(eng, spec)
		if err != nil {
			return 0, err
		}
		return res.Throughput, nil
	})
}

// Workload generators.
type (
	// KeyGenerator produces keys with exponential reuse distances (the
	// paper's KRD model).
	KeyGenerator = workload.KeyGenerator
	// ZipfKeyGenerator produces Zipf-skewed keys (YCSB's web-style
	// model, the archetype the paper contrasts MG-RAST against).
	ZipfKeyGenerator = workload.ZipfKeyGenerator
)

// NewKeyGenerator builds a KRD-controlled key stream.
func NewKeyGenerator(keySpace int, meanKRD float64, seed int64) (*KeyGenerator, error) {
	return workload.NewKeyGenerator(keySpace, meanKRD, seed)
}

// NewZipfKeyGenerator builds a Zipf-skewed key stream.
func NewZipfKeyGenerator(keySpace int, s float64, seed int64) (*ZipfKeyGenerator, error) {
	return workload.NewZipfKeyGenerator(keySpace, s, seed)
}

// Workload forecasting (the paper's Section 6 future work).
type (
	// Forecaster predicts the next window's read ratio.
	Forecaster = forecast.Forecaster
	// EWMAForecaster is an exponentially-weighted moving average.
	EWMAForecaster = forecast.EWMA
	// MarkovForecaster learns the regime transition structure online.
	MarkovForecaster = forecast.Markov
	// ProactiveController re-tunes for the forecast next window rather
	// than the window just observed.
	ProactiveController = core.ProactiveController
)

// NewEWMAForecaster builds an EWMA with smoothing factor alpha.
func NewEWMAForecaster(alpha float64) (*EWMAForecaster, error) { return forecast.NewEWMA(alpha) }

// NewMarkovForecaster builds a discretized Markov-chain predictor.
func NewMarkovForecaster(bins int) (*MarkovForecaster, error) { return forecast.NewMarkov(bins) }

// NewProactiveController wires a forecaster-driven online controller.
func NewProactiveController(t *Tuner, a Applier, f Forecaster, threshold float64) (*ProactiveController, error) {
	return core.NewProactiveController(t, a, f, threshold)
}

// LoadSurrogate reads a surrogate saved with Surrogate.Save and binds
// it to space, validating datastore and key-parameter layout.
func LoadSurrogate(path string, space *Space) (*Surrogate, error) {
	return core.LoadSurrogate(path, space)
}

// Cluster consistency levels and availability statistics.
type (
	// ConsistencyLevel selects how many replicas a read consults.
	ConsistencyLevel = cluster.ConsistencyLevel
	// ClusterStats counts availability events and hinted handoffs.
	ClusterStats = cluster.Stats
)

// Read consistency levels.
const (
	ConsistencyOne    = cluster.ConsistencyOne
	ConsistencyQuorum = cluster.ConsistencyQuorum
	ConsistencyAll    = cluster.ConsistencyAll
)

// Coordinator resilience and deterministic fault injection.
type (
	// ResilienceOptions tunes the cluster coordinator's retry, timeout,
	// speculative-read, and hint-buffer machinery.
	ResilienceOptions = cluster.ResilienceOptions
	// FaultKind enumerates the injectable fault classes.
	FaultKind = fault.Kind
	// FaultEvent is one scheduled fault against one node.
	FaultEvent = fault.Event
	// FaultSchedule is a set of fault events replayed in virtual time.
	FaultSchedule = fault.Schedule
	// FaultInjector replays a schedule against a cluster or engine.
	FaultInjector = fault.Injector
	// FaultTarget is what an injector drives (Cluster satisfies it).
	FaultTarget = fault.Target
	// FaultHarness interposes an injector between a workload driver and
	// its store.
	FaultHarness = fault.Harness
	// EngineFaultTarget adapts a single engine to FaultTarget.
	EngineFaultTarget = fault.EngineTarget
)

// Fault kinds.
const (
	FaultFail       = fault.Fail
	FaultRestart    = fault.Restart
	FaultSlow       = fault.Slow
	FaultTransient  = fault.Transient
	FaultCorruptLog = fault.CorruptLog
)

// DefaultResilienceOptions enables the full coordinator resilience
// stack: bounded retries with exponential backoff, per-op timeouts, and
// speculative reads around stragglers.
func DefaultResilienceOptions() ResilienceOptions { return cluster.DefaultResilienceOptions() }

// PassiveResilience disables retries, timeouts, and speculation,
// keeping only bounded hinted handoff — the pre-hardening behaviour.
func PassiveResilience() ResilienceOptions { return cluster.PassiveResilience() }

// NewFaultInjector validates a schedule against a target and prepares a
// deterministic seeded replay.
func NewFaultInjector(target FaultTarget, schedule FaultSchedule, seed int64) (*FaultInjector, error) {
	return fault.NewInjector(target, schedule, seed)
}

// NewFaultHarness wraps a store so the injector observes the virtual
// clock before every operation.
func NewFaultHarness(store Store, inj *FaultInjector) *FaultHarness {
	return fault.NewHarness(store, inj)
}

// Guarded online re-tuning.
type (
	// GuardOptions tunes prediction vetting, the canary probe, and
	// rollback for guarded re-tuning.
	GuardOptions = core.GuardOptions
	// GuardStats counts guarded re-tuning outcomes.
	GuardStats = core.GuardStats
	// GuardedController is the hardened online re-tuning loop with
	// prediction vetting, canarying, and last-known-good rollback.
	GuardedController = core.GuardedController
)

// DefaultGuardOptions enables every re-tuning guard with conservative
// settings.
func DefaultGuardOptions() GuardOptions { return core.DefaultGuardOptions() }

// NewGuardedController wires the guarded online re-tuning loop.
func NewGuardedController(t *Tuner, a Applier, opts GuardOptions) (*GuardedController, error) {
	return core.NewGuardedController(t, a, opts)
}

// Observability: a dependency-free metrics registry plus span tracing
// on the simulator's virtual clock, so instrumented runs stay bit-for-
// bit reproducible under a seed. Pass an ObsRegistry via
// EngineOptions.Obs, ClusterOptions.Obs, TunerOptions.Obs, or
// SimulatorConfig.Obs; a nil registry disables every instrument at the
// cost of one branch per event.
type (
	// ObsRegistry interns counters, gauges, and histograms by name and
	// buffers virtual-time spans.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time export of a registry: deterministic
	// JSON and a rendered text dashboard.
	ObsSnapshot = obs.Snapshot
	// ObsSpan is one traced operation on a virtual work axis.
	ObsSpan = obs.Span
	// ObsCounter is a monotonically increasing metric.
	ObsCounter = obs.Counter
	// ObsGauge is a last-value metric.
	ObsGauge = obs.Gauge
	// ObsHistogram is a bounded-range distribution metric.
	ObsHistogram = obs.Histogram
)

// NewObsRegistry creates an empty observability registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }
